"""Tests for the command-line interface."""

import json
import re

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig11", "table3", "table4", "fig18"):
        assert name in out


def test_run_table4(capsys):
    assert main(["run", "table4", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "hetero_router" in out
    assert "paper" in out


def test_run_csv_output(capsys):
    assert main(["run", "table1", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("interface,")
    assert "SerDes" in out


def test_run_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_simulate_smoke(capsys):
    code = main(
        [
            "simulate",
            "--family",
            "hetero_phy_torus",
            "--chiplets",
            "2x2",
            "--nodes",
            "3x3",
            "--cycles",
            "1500",
            "--rate",
            "0.1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "avg_latency" in out
    assert "hetero-phy-torus-2x2(3x3)" in out


def test_simulate_bad_geometry():
    with pytest.raises(SystemExit):
        main(["simulate", "--chiplets", "four-by-four"])


SIM_ARGS = [
    "simulate",
    "--family",
    "hetero_phy_torus",
    "--chiplets",
    "2x2",
    "--nodes",
    "3x3",
    "--cycles",
    "1500",
    "--rate",
    "0.1",
]


def test_simulate_integer_counters_print_as_integers(capsys):
    assert main(SIM_ARGS) == 0
    out = capsys.readouterr().out
    match = re.search(r"packets_delivered\s*: (\S+)", out)
    assert match, out
    assert re.fullmatch(r"\d+", match.group(1)), "counter printed as float"
    assert re.search(r"avg_latency\s*: \d+\.\d{3}", out)


def test_simulate_seed_is_plumbed_and_reproducible(capsys):
    assert main([*SIM_ARGS, "--seed", "11"]) == 0
    first = capsys.readouterr().out
    assert "seed     : 11" in first
    assert main([*SIM_ARGS, "--seed", "11"]) == 0
    assert capsys.readouterr().out == first
    assert main([*SIM_ARGS, "--seed", "12"]) == 0
    other = capsys.readouterr().out
    assert other != first


def test_simulate_telemetry_flags(tmp_path, capsys):
    metrics_dir = tmp_path / "metrics"
    trace_path = tmp_path / "trace.json"
    code = main(
        [
            *SIM_ARGS,
            "--seed",
            "7",
            "--epoch",
            "300",
            "--metrics",
            str(metrics_dir),
            "--trace",
            str(trace_path),
            "--profile",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert (metrics_dir / "epochs.csv").is_file()
    assert (metrics_dir / "metrics.json").is_file()
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    assert out.count("wrote ") >= 8  # 7 metric files + the trace
    assert "function calls" in out  # cProfile report printed


def test_check_single_family_passes(capsys):
    assert main(["check", "--family", "parallel_mesh"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "parallel-mesh-2x2(3x3)" in out


def test_check_all_families_pass(capsys):
    assert main(["check", "--all"]) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 5
    assert "FAIL" not in out


def test_check_wormhole_mode_flags_adaptive_family(capsys):
    assert main(["check", "--family", "serial_torus", "--mode", "wormhole"]) == 1
    out = capsys.readouterr().out
    assert "CDG-CYCLE-EXTENDED" in out
    assert "FAILED verification" in out


def test_check_wormhole_mode_passes_hypercube(capsys):
    assert main(["check", "--family", "serial_hypercube", "--mode", "wormhole"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_check_exits_nonzero_on_injected_cycle(capsys, monkeypatch):
    """Replace the routing factory with a deadlocking ring: the genuine
    `repro check` path must report the cycle and exit 1."""

    def ring_factory(spec, **_kwargs):
        def ring_routing(router, packet):
            if packet.dst == router.node:
                return [(0, 0, True)]
            by_tag = router.out_port_by_tag
            port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
            if port is None:
                port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
            return [(port, 0, True)]

        return ring_routing

    monkeypatch.setattr("repro.sim.build.make_routing", ring_factory)
    assert main(["check", "--family", "serial_torus"]) == 1
    out = capsys.readouterr().out
    assert "CDG-CYCLE" in out
    assert "FAIL" in out


def test_check_requires_family_or_all():
    with pytest.raises(SystemExit):
        main(["check"])


def test_check_grid_alias_accepts_nondefault_geometry(capsys):
    assert main(
        ["check", "--family", "parallel_mesh", "--grid", "3x2", "--nodes", "2x2"]
    ) == 0
    out = capsys.readouterr().out
    assert "parallel-mesh-3x2(2x2)" in out
    assert "PASS" in out


def test_check_json_document(tmp_path, capsys):
    json_path = tmp_path / "check.json"
    assert main(["check", "--all", "--json", str(json_path)]) == 0
    assert f"wrote {json_path}" in capsys.readouterr().out
    doc = json.loads(json_path.read_text())
    assert doc["ok"] is True
    assert len(doc["reports"]) == 5
    assert all(r["ok"] for r in doc["reports"])
    assert {r["mode"] for r in doc["reports"]} == {"vct"}


def test_check_prove_flag_certifies(tmp_path, capsys):
    json_path = tmp_path / "prove.json"
    code = main(
        ["check", "--family", "parallel_mesh", "--prove", "--json", str(json_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "CERTIFIED" in out
    doc = json.loads(json_path.read_text())
    assert doc["certified"] is True
    [cert] = doc["certificates"]
    assert cert["family"] == "parallel_mesh"
    assert cert["schema_version"] == 1


def test_prove_writes_certificate_and_registry_record(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    code = main(
        [
            "prove",
            "--family",
            "parallel_mesh",
            "--mode",
            "vct",
            "--runs-dir",
            str(runs_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "CERTIFIED" in out
    cert_path = runs_dir / "certificates" / "CERT_parallel-mesh-2x2(3x3)_vct.json"
    assert cert_path.is_file()
    cert = json.loads(cert_path.read_text())
    assert cert["certified"] is True
    from repro.telemetry.runstore import RunStore

    [record] = RunStore(runs_dir).load()
    assert record.kind == "prove"
    assert record.label == "parallel_mesh:vct"
    assert record.extras["certified"] == 1.0
    assert record.artifacts["certificate"] == str(cert_path)


def test_prove_both_modes_refutes_wormhole_cycles(tmp_path, capsys):
    json_path = tmp_path / "prove.json"
    code = main(
        [
            "prove",
            "--family",
            "serial_torus",
            "--no-fault-masks",
            "--no-record",
            "--json",
            str(json_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "[mode=vct]" in out
    assert "[mode=wormhole]" in out
    assert "CDG-CYCLE-REFUTED" in out
    doc = json.loads(json_path.read_text())
    assert doc["certified"] is True
    assert [c["mode"] for c in doc["certificates"]] == ["vct", "wormhole"]
    wormhole = doc["certificates"][1]
    assert wormhole["modelcheck"]["verdict"].startswith("refuted")


def test_prove_exits_nonzero_on_injected_cycle(capsys, monkeypatch):
    """A genuinely deadlocking escape must be refused certification with
    a realized counterexample, not downgraded."""

    def ring_factory(spec, **_kwargs):
        def ring_routing(router, packet):
            if packet.dst == router.node:
                return [(0, 0, True)]
            by_tag = router.out_port_by_tag
            port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
            if port is None:
                port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
            return [(port, 0, True)]

        return ring_routing

    monkeypatch.setattr("repro.sim.build.make_routing", ring_factory)
    code = main(
        [
            "prove",
            "--family",
            "serial_torus",
            "--mode",
            "vct",
            "--grid",
            "2x1",
            "--nodes",
            "2x1",
            "--no-fault-masks",
            "--no-record",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "MC-DEADLOCK" in out
    assert "NOT CERTIFIED" in out
    assert "FAILED" in out


def test_prove_requires_family_or_all():
    with pytest.raises(SystemExit):
        main(["prove"])


def test_report_without_results_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="no benchmark CSVs"):
        main(["report", "--results-dir", str(tmp_path / "missing")])


def test_run_appends_registry_record(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    assert main(
        ["run", "table1", "--scale", "tiny", "--runs-dir", str(runs_dir)]
    ) == 0
    capsys.readouterr()
    from repro.telemetry.runstore import RunStore

    records = RunStore(runs_dir).load()
    assert len(records) == 1
    assert records[0].kind == "experiment"
    assert records[0].label == "table1"
    assert records[0].scale == "tiny"
    assert records[0].wall_seconds > 0


def test_run_no_record_skips_registry(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    args = ["run", "table1", "--scale", "tiny", "--runs-dir", str(runs_dir)]
    assert main([*args, "--no-record"]) == 0
    capsys.readouterr()
    assert not (runs_dir / "runs.jsonl").exists()


def test_simulate_records_run_and_prints_manifest(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    metrics_dir = tmp_path / "metrics"
    code = main(
        [
            *SIM_ARGS,
            "--metrics",
            str(metrics_dir),
            "--runs-dir",
            str(runs_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    manifest = re.search(r"^artifacts : (.+)$", out, re.MULTILINE)
    assert manifest, out
    assert f"metrics_dir={metrics_dir}" in manifest.group(1)
    assert "record=" in manifest.group(1)
    from repro.telemetry.runstore import RunStore

    records = RunStore(runs_dir).load()
    assert len(records) == 1
    assert records[0].kind == "simulate"
    assert records[0].seed == 1
    assert records[0].artifacts["metrics_dir"] == str(metrics_dir)
    assert records[0].run_id in manifest.group(1)


def test_simulate_latency_breakdown(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    csv_path = tmp_path / "breakdown.csv"
    code = main(
        [
            *SIM_ARGS,
            "--latency-breakdown",
            "--breakdown-csv",
            str(csv_path),
            "--runs-dir",
            str(runs_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "latency breakdown" in out
    assert "top bottleneck links" in out
    assert f"breakdown_csv={csv_path}" in out
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "scope,packets,stage,total_cycles,share,mean,p50,p95,p99"
    assert any(line.startswith("all,") for line in lines[1:])
    from repro.telemetry.runstore import RunStore

    [record] = RunStore(runs_dir).load()
    assert record.breakdown["packets"] > 0
    assert record.artifacts["breakdown_csv"] == str(csv_path)


def test_simulate_breakdown_flag_alone_prints_tables(capsys):
    # --latency-breakdown without a CSV path still prints the tables and
    # never writes artifacts.
    assert main([*SIM_ARGS, "--latency-breakdown", "--no-record"]) == 0
    out = capsys.readouterr().out
    assert "latency breakdown" in out
    assert "breakdown_csv=" not in out


def test_simulate_plain_run_prints_no_manifest(tmp_path, capsys):
    assert main([*SIM_ARGS, "--runs-dir", str(tmp_path), "--no-record"]) == 0
    out = capsys.readouterr().out
    assert "artifacts :" not in out


def test_bench_cli_writes_bench_file(tmp_path, capsys):
    code = main(
        [
            "bench",
            "--scale",
            "tiny",
            "--reps",
            "1",
            "--case",
            "fig14_hetero_channel",
            "--out-dir",
            str(tmp_path),
            "--runs-dir",
            str(tmp_path / "runs"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    path = tmp_path / "BENCH_0.json"
    assert path.is_file()
    assert f"wrote {path}" in out
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == 1
    assert list(doc["cases"]) == ["fig14_hetero_channel"]
    # The per-phase host-time block rides along for `repro compare`.
    host = doc["cases"]["fig14_hetero_channel"]["host"]
    assert 0.95 <= host["conservation"] <= 1.05
    # One kind="bench" registry record feeds the dashboard's
    # "Host performance" panel.
    from repro.telemetry.runstore import RunStore

    records = RunStore(tmp_path / "runs").load()
    assert len(records) == 1 and records[0].kind == "bench"
    assert "fig14_hetero_channel" in records[0].bench
    assert f"recorded {tmp_path / 'runs' / 'runs.jsonl'}" in out
    # The mem block rides along for the regression sentinel: full block
    # (with sites) in the file, slim block (no sites) in the registry.
    from repro.telemetry.memprof import validate_mem_block

    validate_mem_block(doc["cases"]["fig14_hetero_channel"]["mem"])
    slim = records[0].bench["fig14_hetero_channel"]["mem"]
    assert slim["peak_bytes"] > 0 and "top_sites" not in slim


def test_bench_cli_rejects_unknown_case(tmp_path):
    with pytest.raises(SystemExit, match="unknown bench case"):
        main(["bench", "--case", "fig99", "--out-dir", str(tmp_path)])


def _write_bench_pair(tmp_path, cps_a, cps_b):
    from .test_bench_compare import make_bench_doc, make_case

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(make_bench_doc(fig11=make_case(cps_median=cps_a, cps_iqr=0.0))))
    b.write_text(json.dumps(make_bench_doc(fig11=make_case(cps_median=cps_b, cps_iqr=0.0))))
    return a, b


def test_compare_cli_is_warn_only_by_default(tmp_path, capsys):
    a, b = _write_bench_pair(tmp_path, 5_000.0, 3_000.0)  # a clear regression
    assert main(["compare", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "! regressed" in out
    assert "1 regression(s)" in out


def test_compare_cli_strict_exits_nonzero_on_regression(tmp_path, capsys):
    a, b = _write_bench_pair(tmp_path, 5_000.0, 3_000.0)
    assert main(["compare", str(a), str(b), "--strict"]) == 1
    capsys.readouterr()
    # Improvements never fail, even under --strict.
    assert main(["compare", str(b), str(a), "--strict"]) == 0


def test_compare_cli_missing_file_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="no such file"):
        main(["compare", str(tmp_path / "a.json"), str(tmp_path / "b.json")])


def test_compare_cli_gate_filters_strict_exit(tmp_path, capsys):
    # Regression is in wall_seconds/cycles_per_second; a gate on an
    # unrelated metric keeps --strict green, a matching gate trips it.
    a, b = _write_bench_pair(tmp_path, 5_000.0, 3_000.0)
    assert main(["compare", str(a), str(b), "--strict", "--gate", "events"]) == 0
    capsys.readouterr()
    code = main(
        ["compare", str(a), str(b), "--strict", "--gate", "cycles_per_second"]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "gated regression(s)" in err
    assert "cycles_per_second" in err


def test_compare_cli_chains_three_files_and_writes_json(tmp_path, capsys):
    from .test_bench_compare import make_bench_doc, make_case

    paths = []
    for index, cps in enumerate((5_000.0, 5_050.0, 3_000.0)):
        path = tmp_path / f"BENCH_{index}.json"
        path.write_text(
            json.dumps(make_bench_doc(fig11=make_case(cps_median=cps, cps_iqr=0.0)))
        )
        paths.append(str(path))
    report_path = tmp_path / "compare.json"
    assert main(["compare", *paths, "--json", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "step 1/2" in out and "step 2/2" in out
    assert "chain total: 1 regression(s)" in out
    doc = json.loads(report_path.read_text())
    assert doc["kind"] == "compare"
    assert len(doc["steps"]) == 2 and doc["regressions"] == 1
    # The chain gates strict mode exactly like the two-operand form.
    assert main(["compare", *paths, "--strict"]) == 1


def test_regress_cli_flags_step_and_passes_noise(tmp_path, capsys):
    from benchmarks.make_registry_seed import make_records, write_registry

    stepped = tmp_path / "stepped"
    write_registry(stepped, make_records(step_at=20, culprit="rc_va"))
    report_path = tmp_path / "sentinel.json"
    code = main([
        "regress", "--runs-dir", str(stepped), "--strict",
        "--json", str(report_path),
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "! regressed" in out
    assert "culprit: rc_va" in out
    doc = json.loads(report_path.read_text())
    assert doc["kind"] == "sentinel" and doc["regressions"] >= 3
    named = [
        r["changepoint"]["key"]
        for r in doc["reports"]
        if r["verdict"] == "regressed" and r["metric"] == "cycles_per_second"
    ]
    assert named and all(
        abs(int(key.split("-")[1]) - 20) <= 2 for key in named
    )

    flat = tmp_path / "flat"
    write_registry(flat, make_records())
    assert main(["regress", "--runs-dir", str(flat), "--strict"]) == 0
    # Without --strict even a stepped registry exits 0 (warn-only mode).
    capsys.readouterr()
    assert main(["regress", "--runs-dir", str(stepped)]) == 0


def test_regress_cli_empty_registry_is_clean(tmp_path, capsys):
    assert main(["regress", "--runs-dir", str(tmp_path / "nothing"), "--strict"]) == 0
    out = capsys.readouterr().out
    assert "no bench history" in out
    # A registry with only simulate records is just as empty to the sentinel.
    from repro.telemetry.runstore import RunStore

    from .test_runstore import make_record

    runs = tmp_path / "runs"
    RunStore(runs).append(make_record())
    assert main(["regress", "--runs-dir", str(runs), "--strict"]) == 0


def test_regress_cli_metric_filter_and_bad_window(tmp_path, capsys):
    from benchmarks.make_registry_seed import make_records, write_registry

    runs = tmp_path / "runs"
    write_registry(runs, make_records(step_at=20))
    assert main([
        "regress", "--runs-dir", str(runs), "--metric", "mem.", "--strict",
    ]) == 0  # the step hits throughput, not memory
    out = capsys.readouterr().out
    assert "cycles_per_second" not in out
    with pytest.raises(SystemExit, match="min_segment"):
        main(["regress", "--runs-dir", str(runs), "--window", "1"])


def test_profile_cli_writes_artifacts(tmp_path, capsys):
    from repro.telemetry.hostprof import load_speedscope, validate_speedscope

    out_dir = tmp_path / "prof"
    code = main(
        [
            "profile",
            "--family",
            "hetero_phy_torus",
            "--chiplets",
            "2x2",
            "--nodes",
            "3x3",
            "--cycles",
            "1200",
            "--rate",
            "0.1",
            "--seed",
            "3",
            "--stride",
            "2",
            "--out-dir",
            str(out_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "phase" in out and "conservation" in out
    host = json.loads((out_dir / "profile.host.json").read_text())
    assert host["stride"] == 2
    assert 0.95 <= host["conservation"] <= 1.05
    doc = load_speedscope(out_dir / "profile.speedscope.json")
    validate_speedscope(doc)
    folded = (out_dir / "profile.folded.txt").read_text()
    assert folded.splitlines() and folded.startswith("engine;")


def test_profile_cli_mem_mode(tmp_path, capsys):
    from repro.telemetry.memprof import validate_mem_block

    out_dir = tmp_path / "prof"
    code = main(
        [
            "profile",
            "--family", "hetero_phy_torus",
            "--chiplets", "2x2",
            "--nodes", "3x3",
            "--cycles", "1200",
            "--rate", "0.1",
            "--seed", "3",
            "--out-dir", str(out_dir),
            "--mem",
            "--mem-top", "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "memory attribution" in out and "peak heap" in out
    block = validate_mem_block(json.loads((out_dir / "profile.mem.json").read_text()))
    assert block["peak_bytes"] > 0
    assert len(block["top_sites"]) <= 5


def test_dashboard_cli(tmp_path, capsys):
    from .test_dashboard import write_fig11_csv

    results = tmp_path / "results"
    write_fig11_csv(results)
    out_path = tmp_path / "dash.html"
    code = main(
        [
            "dashboard",
            "--out",
            str(out_path),
            "--results-dir",
            str(results),
            "--scale",
            "tiny",
            "--bench-dir",
            str(tmp_path),
            "--runs-dir",
            str(tmp_path / "runs"),
        ]
    )
    assert code == 0
    assert f"wrote {out_path}" in capsys.readouterr().out
    assert "<svg" in out_path.read_text()


def test_dashboard_cli_without_results_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="no benchmark CSVs"):
        main(
            [
                "dashboard",
                "--out",
                str(tmp_path / "dash.html"),
                "--results-dir",
                str(tmp_path / "missing"),
            ]
        )


def test_simulate_live_writes_feed_and_joins_registry(tmp_path, capsys):
    from repro.telemetry.live import read_feed
    from repro.telemetry.runstore import RunStore

    runs_dir = tmp_path / "runs"
    code = main(
        [
            *SIM_ARGS,
            "--seed",
            "7",
            "--live",
            "--live-every",
            "500",
            "--runs-dir",
            str(runs_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    [record] = RunStore(runs_dir).load()
    feed_path = runs_dir / "live" / f"{record.run_id}.jsonl"
    assert feed_path.is_file()
    assert record.artifacts["live"] == str(feed_path)
    events = read_feed(feed_path)  # strict read: every event passes the schema
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "start" and kinds[-1] == "finish"
    assert kinds.count("heartbeat") == 3  # 1500 cycles at --live-every 500
    # The feed and the registry record share one run id: the fleet view join.
    assert all(e["run_id"] == record.run_id for e in events)
    assert events[0]["meta"]["seed"] == 7
    assert f"live={feed_path}" in out


def test_simulate_live_does_not_perturb_results(tmp_path, capsys):
    """The feed observes the run; the simulation itself must not change."""

    def stats_block(text):
        return [
            line
            for line in text.splitlines()
            if ":" in line and not line.startswith(("wrote ", "artifacts "))
        ]

    assert main([*SIM_ARGS, "--seed", "11"]) == 0
    plain = stats_block(capsys.readouterr().out)
    assert main(
        [*SIM_ARGS, "--seed", "11", "--live", "--runs-dir", str(tmp_path)]
    ) == 0
    live = stats_block(capsys.readouterr().out)
    assert plain == live


def test_simulate_live_validates_interval(tmp_path):
    with pytest.raises(SystemExit):
        main([*SIM_ARGS, "--live", "--live-every", "0",
              "--runs-dir", str(tmp_path)])


def test_watch_once_prints_fleet_state(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    assert main([*SIM_ARGS, "--seed", "7", "--live", "--runs-dir",
                 str(runs_dir)]) == 0
    capsys.readouterr()
    code = main(["watch", "--once", "--runs-dir", str(runs_dir)])
    assert code == 0
    state = json.loads(capsys.readouterr().out)
    assert state["records"] == 1
    assert state["skipped"] == 0
    [status] = state["live"]
    assert status["state"] == "finished"


def test_watch_once_warns_about_skipped_lines(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    runs_dir.mkdir()
    (runs_dir / "runs.jsonl").write_text("{corrupt\n")
    assert main(["watch", "--once", "--runs-dir", str(runs_dir)]) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out)["skipped"] == 1
    assert "skipped 1 unreadable registry line" in captured.err


def test_dashboard_cli_warns_about_skipped_lines(tmp_path, capsys):
    from .test_dashboard import write_fig11_csv

    results = tmp_path / "results"
    write_fig11_csv(results)
    runs_dir = tmp_path / "runs"
    runs_dir.mkdir()
    (runs_dir / "runs.jsonl").write_text("{corrupt\n")
    code = main(
        [
            "dashboard",
            "--out",
            str(tmp_path / "dash.html"),
            "--results-dir",
            str(results),
            "--scale",
            "tiny",
            "--runs-dir",
            str(runs_dir),
        ]
    )
    assert code == 0
    assert "skipped 1 unreadable registry line" in capsys.readouterr().err
