"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig11", "table3", "table4", "fig18"):
        assert name in out


def test_run_table4(capsys):
    assert main(["run", "table4", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "hetero_router" in out
    assert "paper" in out


def test_run_csv_output(capsys):
    assert main(["run", "table1", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("interface,")
    assert "SerDes" in out


def test_run_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_simulate_smoke(capsys):
    code = main(
        [
            "simulate",
            "--family",
            "hetero_phy_torus",
            "--chiplets",
            "2x2",
            "--nodes",
            "3x3",
            "--cycles",
            "1500",
            "--rate",
            "0.1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "avg_latency" in out
    assert "hetero-phy-torus-2x2(3x3)" in out


def test_simulate_bad_geometry():
    with pytest.raises(SystemExit):
        main(["simulate", "--chiplets", "four-by-four"])


def test_check_single_family_passes(capsys):
    assert main(["check", "--family", "parallel_mesh"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "parallel-mesh-2x2(3x3)" in out


def test_check_all_families_pass(capsys):
    assert main(["check", "--all"]) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 5
    assert "FAIL" not in out


def test_check_wormhole_mode_flags_adaptive_family(capsys):
    assert main(["check", "--family", "serial_torus", "--mode", "wormhole"]) == 1
    out = capsys.readouterr().out
    assert "CDG-CYCLE-EXTENDED" in out
    assert "FAILED verification" in out


def test_check_wormhole_mode_passes_hypercube(capsys):
    assert main(["check", "--family", "serial_hypercube", "--mode", "wormhole"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_check_exits_nonzero_on_injected_cycle(capsys, monkeypatch):
    """Replace the routing factory with a deadlocking ring: the genuine
    `repro check` path must report the cycle and exit 1."""

    def ring_factory(spec, **_kwargs):
        def ring_routing(router, packet):
            if packet.dst == router.node:
                return [(0, 0, True)]
            by_tag = router.out_port_by_tag
            port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
            if port is None:
                port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
            return [(port, 0, True)]

        return ring_routing

    monkeypatch.setattr("repro.sim.build.make_routing", ring_factory)
    assert main(["check", "--family", "serial_torus"]) == 1
    out = capsys.readouterr().out
    assert "CDG-CYCLE" in out
    assert "FAIL" in out


def test_check_requires_family_or_all():
    with pytest.raises(SystemExit):
        main(["check"])
