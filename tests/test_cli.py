"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig11", "table3", "table4", "fig18"):
        assert name in out


def test_run_table4(capsys):
    assert main(["run", "table4", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "hetero_router" in out
    assert "paper" in out


def test_run_csv_output(capsys):
    assert main(["run", "table1", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("interface,")
    assert "SerDes" in out


def test_run_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_simulate_smoke(capsys):
    code = main(
        [
            "simulate",
            "--family",
            "hetero_phy_torus",
            "--chiplets",
            "2x2",
            "--nodes",
            "3x3",
            "--cycles",
            "1500",
            "--rate",
            "0.1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "avg_latency" in out
    assert "hetero-phy-torus-2x2(3x3)" in out


def test_simulate_bad_geometry():
    with pytest.raises(SystemExit):
        main(["simulate", "--chiplets", "four-by-four"])
