"""Tests for the simulation configuration."""

import pytest

from repro.sim.config import DEFAULT_CONFIG, SimConfig


def test_table2_defaults():
    config = DEFAULT_CONFIG
    assert config.packet_length == 16
    assert config.onchip_buffer == 32
    assert config.interface_buffer == 64
    assert config.n_vcs == 2
    assert config.onchip_bandwidth == 2
    assert config.parallel_bandwidth == 2
    assert config.parallel_delay == 5
    assert config.serial_bandwidth == 4
    assert config.serial_delay == 20
    assert config.sim_cycles == 100_000
    assert config.warmup_cycles == 10_000


def test_energy_defaults_follow_sec83():
    assert DEFAULT_CONFIG.parallel_energy_pj_per_bit == 1.0
    assert DEFAULT_CONFIG.serial_energy_pj_per_bit == 2.4


def test_halved_variant():
    half = DEFAULT_CONFIG.halved()
    assert half.parallel_bandwidth == 1
    assert half.serial_bandwidth == 2
    # delays are technology constants, not lane counts
    assert half.parallel_delay == DEFAULT_CONFIG.parallel_delay
    assert half.serial_delay == DEFAULT_CONFIG.serial_delay


def test_halved_never_below_one():
    config = SimConfig(parallel_bandwidth=1, serial_bandwidth=1)
    half = config.halved()
    assert half.parallel_bandwidth == 1
    assert half.serial_bandwidth == 1


def test_replace_and_scaled():
    config = DEFAULT_CONFIG.replace(packet_length=8)
    assert config.packet_length == 8
    assert config.serial_delay == DEFAULT_CONFIG.serial_delay
    short = config.scaled(5_000)
    assert short.sim_cycles == 5_000
    assert short.warmup_cycles == 500
    explicit = config.scaled(5_000, warmup=100)
    assert explicit.warmup_cycles == 100


def test_validation():
    with pytest.raises(ValueError):
        SimConfig(packet_length=0)
    with pytest.raises(ValueError):
        SimConfig(sim_cycles=100, warmup_cycles=100)
    with pytest.raises(ValueError):
        SimConfig(n_vcs=0)


def test_phy_bundles():
    config = DEFAULT_CONFIG
    assert config.parallel_phy.bandwidth == 2
    assert config.parallel_phy.delay == 5
    assert config.serial_phy.energy_pj_per_bit == 2.4
    assert config.onchip_phy.delay == 1


def test_config_immutable():
    with pytest.raises(Exception):
        DEFAULT_CONFIG.packet_length = 8  # frozen dataclass
