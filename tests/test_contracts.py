"""Interface-contract checker: clean families plus injected violations.

The positive direction mirrors the `repro prove` contracts pass: every
built family satisfies every endpoint contract with *exact* credit
provisioning (no stranded capacity either).  The negative direction
mutates one endpoint at a time — credits, VC counts, channel symmetry,
reorder-buffer sizing — and requires the matching CONTRACT-* finding.
"""

import dataclasses

from repro.analysis import Report, check_contracts
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid

from .conftest import make_network


def _checked(spec, network) -> Report:
    report = Report(system=spec.name)
    check_contracts(spec, network, report)
    return report


def test_every_family_satisfies_contracts(family, small_grid):
    spec, network, _ = make_network(family, small_grid, SimConfig())
    report = _checked(spec, network)
    assert report.ok, report.render(verbose=True)
    # Provisioning is exact: equality, not merely no-overflow.
    assert not report.warnings, report.render(verbose=True)


def test_overprovisioned_credits_are_an_error():
    spec, network, _ = make_network(
        "serial_torus", ChipletGrid(2, 2, 3, 3), SimConfig()
    )
    link = network.links[0]
    out = link.src_router.outputs[link.src_port]
    out.credits[0] += 1  # one phantom buffer slot
    report = _checked(spec, network)
    assert not report.ok
    assert "CONTRACT-CREDIT" in {f.code for f in report.errors}


def test_stranded_credits_are_a_warning_only():
    spec, network, _ = make_network(
        "serial_torus", ChipletGrid(2, 2, 3, 3), SimConfig()
    )
    link = network.links[0]
    out = link.src_router.outputs[link.src_port]
    out.credits[0] -= 1
    report = _checked(spec, network)
    assert report.ok  # under-provisioning wastes capacity, never corrupts
    assert "CONTRACT-CREDIT" in {f.code for f in report.warnings}


def test_vc_count_disagreement_is_an_error():
    spec, network, _ = make_network(
        "serial_torus", ChipletGrid(2, 2, 3, 3), SimConfig()
    )
    link = network.links[0]
    link.dst_router.inputs[link.dst_port].vcs.pop()
    report = _checked(spec, network)
    assert not report.ok
    assert "CONTRACT-VC" in report.codes()


def test_sub_packet_vc_is_an_error():
    config = SimConfig()
    spec, network, _ = make_network(
        "serial_torus", ChipletGrid(2, 2, 3, 3), config
    )
    link = network.links[0]
    out = link.src_router.outputs[link.src_port]
    out.credits[0] = config.packet_length - 1
    report = _checked(spec, network)
    assert not report.ok
    assert "CONTRACT-CAPACITY" in report.codes()


def _first_interface_index(spec) -> int:
    for idx, channel in enumerate(spec.channels):
        if channel.is_interface:
            return idx
    raise AssertionError("family has no interface channel")


def test_missing_reverse_interface_is_an_error():
    spec, network, _ = make_network(
        "serial_torus", ChipletGrid(2, 2, 3, 3), SimConfig()
    )
    idx = _first_interface_index(spec)
    forward = spec.channels[idx]
    spec.channels = [
        c
        for c in spec.channels
        if not (c.src == forward.dst and c.dst == forward.src and c.kind is forward.kind)
    ]
    report = _checked(spec, network)
    assert not report.ok
    assert "CONTRACT-WIDTH" in report.codes()


def test_asymmetric_interface_pair_is_an_error():
    spec, network, _ = make_network(
        "serial_torus", ChipletGrid(2, 2, 3, 3), SimConfig()
    )
    idx = _first_interface_index(spec)
    forward = spec.channels[idx]
    for j, channel in enumerate(spec.channels):
        if (
            channel.src == forward.dst
            and channel.dst == forward.src
            and channel.kind is forward.kind
        ):
            spec.channels[j] = dataclasses.replace(channel, n_vcs=channel.n_vcs + 1)
    report = _checked(spec, network)
    assert not report.ok
    assert "CONTRACT-WIDTH" in report.codes()


def test_undersized_built_rob_is_an_error():
    spec, network, _ = make_network(
        "hetero_phy_torus", ChipletGrid(2, 2, 3, 3), SimConfig(rob_capacity=1)
    )
    report = _checked(spec, network)
    assert not report.ok
    assert "CONTRACT-ROB" in report.codes()
