"""Tests for the chiplet-reuse cost model."""

import pytest

from repro.cost.reuse import (
    HETERO_IF_AREA_OVERHEAD,
    PackageCost,
    ProcessCost,
    SystemClass,
    portfolio_cost,
    reuse_savings,
)

SYSTEMS = [
    SystemClass("mobile", n_chiplets=2, volume=1_000_000, needs_interposer=False),
    SystemClass("desktop", n_chiplets=4, volume=400_000, needs_interposer=True),
    SystemClass("datacenter", n_chiplets=16, volume=50_000, needs_interposer=True),
]


def test_yield_decreases_with_area():
    process = ProcessCost()
    assert process.die_yield(50) > process.die_yield(400)
    assert 0 < process.die_yield(400) <= 1


def test_die_cost_increases_with_area():
    process = ProcessCost()
    assert process.die_cost(100) > process.die_cost(25)


def test_die_cost_validation():
    with pytest.raises(ValueError):
        ProcessCost().die_cost(0)


def test_package_interposer_premium():
    package = PackageCost()
    assert package.cost(500, interposer=True) > package.cost(500, interposer=False)


def test_uniform_strategy_pays_nre_per_system():
    process = ProcessCost()
    uniform = portfolio_cost(SYSTEMS, 80, strategy="uniform", process=process)
    hetero = portfolio_cost(SYSTEMS, 80, strategy="hetero", process=process)
    assert uniform.nre_usd == pytest.approx(len(SYSTEMS) * process.nre(80))
    assert hetero.nre_usd == pytest.approx(process.nre(80 * (1 + HETERO_IF_AREA_OVERHEAD)))


def test_hetero_silicon_costs_slightly_more_per_die():
    uniform = portfolio_cost(SYSTEMS, 80, strategy="uniform")
    hetero = portfolio_cost(SYSTEMS, 80, strategy="hetero")
    assert hetero.silicon_usd > uniform.silicon_usd


def test_reuse_saves_across_portfolio():
    """The paper's flexibility-economy argument (Sec 4.3)."""
    savings = reuse_savings(SYSTEMS, 80)
    assert savings["saving_usd"] > 0
    assert 0 < savings["saving_fraction"] < 1


def test_single_system_favors_uniform():
    """With one target system there is nothing to amortize: hetero loses."""
    one = [SystemClass("only", 4, 1_000_000, needs_interposer=True)]
    savings = reuse_savings(one, 80)
    assert savings["saving_usd"] < 0


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        portfolio_cost(SYSTEMS, 80, strategy="magic")


def test_per_system_breakdown_present():
    result = portfolio_cost(SYSTEMS, 80, strategy="hetero")
    assert set(result.systems) == {"mobile", "desktop", "datacenter"}
    assert result.total_usd == pytest.approx(
        result.nre_usd + result.silicon_usd + result.package_usd
    )
