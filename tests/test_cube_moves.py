"""Tests for hypercube move math and host lookup."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.routing.cube_moves import CubeHostIndex, split_dims
from repro.routing.mesh_moves import manhattan
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_serial_hypercube


@given(st.integers(0, 63), st.integers(0, 63))
def test_split_dims_partition(cur, dst):
    minus, plus = split_dims(cur, dst)
    assert set(minus).isdisjoint(plus)
    diff = cur ^ dst
    assert sorted(minus + plus) == [d for d in range(6) if diff >> d & 1]
    for dim in minus:
        assert cur >> dim & 1 == 1
    for dim in plus:
        assert cur >> dim & 1 == 0


@given(st.integers(0, 63), st.integers(0, 63))
def test_split_dims_moves_converge(cur, dst):
    """Correcting minus dims then plus dims reaches the destination."""
    minus, plus = split_dims(cur, dst)
    pos = cur
    for dim in minus:
        assert pos > (pos ^ (1 << dim))  # minus moves decrease the id
        pos ^= 1 << dim
    for dim in plus:
        assert pos < (pos ^ (1 << dim))  # plus moves increase the id
        pos ^= 1 << dim
    assert pos == dst


@pytest.fixture(scope="module")
def host_index():
    grid = ChipletGrid(4, 4, 4, 4)  # 16 chiplets -> 4 cube dims
    spec = build_serial_hypercube(grid, SimConfig())
    return spec, CubeHostIndex(spec)


def test_every_dim_hosted_in_every_chiplet(host_index):
    spec, index = host_index
    for chiplet in range(spec.grid.n_chiplets):
        for dim in range(spec.n_cube_dims):
            hosts = index.hosts(chiplet, dim)
            assert hosts
            assert all(spec.grid.chiplet_of(h) == chiplet for h in hosts)
            assert all(spec.grid.is_interface_node(h) for h in hosts)


def test_hosted_dims_inverse_of_hosts(host_index):
    spec, index = host_index
    for chiplet in range(spec.grid.n_chiplets):
        for dim in range(spec.n_cube_dims):
            for host in index.hosts(chiplet, dim):
                assert dim in index.hosted_dims(host)


def test_nearest_host_in_same_chiplet(host_index):
    spec, index = host_index
    grid = spec.grid
    for node in range(0, grid.n_nodes, 7):
        host, dim = index.nearest_host(node, [0, 1, 2, 3])
        assert grid.chiplet_of(host) == grid.chiplet_of(node)
        assert dim in index.hosted_dims(host)


def test_nearest_host_is_minimal(host_index):
    spec, index = host_index
    grid = spec.grid
    node = grid.node_of(3, 1, 1)
    dims = [0, 2]
    host, _ = index.nearest_host(node, dims)
    best = min(
        manhattan(grid.coords(node), grid.coords(h))
        for d in dims
        for h in index.hosts(grid.chiplet_of(node), d)
    )
    assert manhattan(grid.coords(node), grid.coords(host)) == best


def test_nearest_host_stable_along_path(host_index):
    """Moving one hop toward the chosen host keeps it the chosen host."""
    spec, index = host_index
    grid = spec.grid
    for node in range(0, grid.n_nodes, 11):
        dims = [1, 3]
        host, dim = index.nearest_host(node, dims)
        if host == node:
            continue
        hx, hy = grid.coords(host)
        gx, gy = grid.coords(node)
        step_x = gx + (1 if hx > gx else -1 if hx < gx else 0)
        nxt = grid.node_at(step_x, gy) if hx != gx else grid.node_at(gx, gy + (1 if hy > gy else -1))
        assert index.nearest_host(nxt, dims) == (host, dim)


def test_nearest_host_requires_dims(host_index):
    _, index = host_index
    with pytest.raises(ValueError):
        index.nearest_host(0, [])


def test_requires_cube_system():
    from repro.topology.system import build_parallel_mesh

    spec = build_parallel_mesh(ChipletGrid(2, 2, 2, 2), SimConfig())
    with pytest.raises(ValueError):
        CubeHostIndex(spec)
