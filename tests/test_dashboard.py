"""Tests for the static HTML dashboard (``repro.telemetry.dashboard``)."""

import pytest

from repro.exps.common import ExperimentResult
from repro.telemetry.bench import write_bench
from repro.telemetry.dashboard import DashboardError, build_dashboard, write_dashboard
from repro.telemetry.runstore import RunStore

from .test_bench_compare import make_bench_doc, make_case
from .test_runstore import make_record


def write_fig11_csv(results_dir, scale="tiny"):
    results_dir.mkdir(parents=True, exist_ok=True)
    result = ExperimentResult(
        "fig11", "t", ("pattern", "network", "rate", "avg_latency", "delivered")
    )
    for network, base in (("parallel-mesh", 20.0), ("hetero-phy-full", 18.0)):
        for rate in (0.05, 0.15, 0.25):
            result.add("uniform", network, rate, base + 100 * rate, 0.99)
    (results_dir / f"fig11_{scale}.csv").write_text(result.to_csv() + "\n")


def test_dashboard_renders_all_sections(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    bench_dir = tmp_path / "bench"
    write_bench(make_bench_doc(fig11=make_case(cps_median=5_000.0)), bench_dir)
    write_bench(make_bench_doc(fig11=make_case(cps_median=5_500.0)), bench_dir)
    runs = tmp_path / "runs"
    RunStore(runs).append(make_record(label="smoke"))

    page = build_dashboard(
        results, scale="tiny", bench_dirs=[bench_dir], runs_dir=runs
    )
    assert page.startswith("<!DOCTYPE html>")
    # fig11 curves + bench trajectory + the sentinel's cps figure (the two
    # bench docs share one `created` stamp, so history sees one suite run)
    assert page.count("<svg") == 3
    assert "parallel-mesh" in page and "hetero-phy-full" in page
    assert "var(--series-1" in page  # palette via CSS custom properties
    assert "prefers-color-scheme: dark" in page
    assert "smoke" in page  # the run-registry row
    assert "<script" not in page  # self-contained, no scripting


def test_dashboard_requires_results_csvs(tmp_path):
    with pytest.raises(DashboardError, match="no benchmark CSVs"):
        build_dashboard(tmp_path / "missing")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(DashboardError, match="no benchmark CSVs"):
        build_dashboard(empty)


def test_dashboard_empty_bench_and_runs_degrade_gracefully(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    page = build_dashboard(
        results,
        scale="tiny",
        bench_dirs=[tmp_path / "no-bench"],
        runs_dir=tmp_path / "no-runs",
    )
    assert "no BENCH_" in page
    assert "no run records yet" in page


def test_write_dashboard_creates_parents(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    out = write_dashboard(tmp_path / "deep" / "dashboard.html", results, scale="tiny")
    assert out.is_file()
    assert out.read_text().startswith("<!DOCTYPE html>")


def make_breakdown(**stage_means) -> dict:
    """A minimal ``LatencyLedger.record_summary``-shaped payload."""
    stages = {
        name: {"total": mean * 100, "share": 0.5, "mean": mean,
               "p50": mean, "p95": mean * 2, "p99": mean * 3}
        for name, mean in stage_means.items()
    }
    return {
        "packets": 100,
        "avg_latency": sum(m for m in stage_means.values()),
        "stages": stages,
        "bottleneck_links": [
            {"link": 4, "src": 3, "dst": 12, "kind": "serial",
             "queue_cycles": 640, "stall_cycles": 200, "packets": 42},
        ],
    }


def make_host_summary(sa_st=0.6, link=0.3, rc_va=0.1):
    """A minimal ``HostTimeLedger.record_summary``-shaped payload."""
    shares = {"sa_st": sa_st, "link": link, "rc_va": rc_va}
    return {
        "stride": 4,
        "timed_cycles": 500,
        "total_cycles": 2_000,
        "conservation": 1.0,
        "ns_per_cycle": {name: share * 10_000 for name, share in shares.items()},
        "shares": shares,
    }


def test_dashboard_hostperf_section(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    runs = tmp_path / "runs"
    store = RunStore(runs)
    store.append(make_record(label="plain"))  # not a bench record: skipped
    for cps in (4_000.0, 4_400.0):
        store.append(make_record(
            kind="bench",
            label="bench:tiny",
            bench={"fig11_hetero_phy": {
                "cps_median": cps, "host": make_host_summary(),
            }},
        ))

    page = build_dashboard(results, scale="tiny", runs_dir=runs)
    assert "Host performance" in page
    # fig11 curves + throughput trajectory + phase-share bars + the
    # sentinel's cps figure over the two bench records
    assert page.count("<svg") == 4
    assert "host wall-time share by pipeline phase" in page
    assert "sa_st" in page and "rc_va" in page
    assert "no bench history yet" not in page


def test_dashboard_hostperf_empty_state(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    runs = tmp_path / "runs"
    RunStore(runs).append(make_record(label="plain"))
    page = build_dashboard(results, scale="tiny", runs_dir=runs)
    assert "no bench history yet" in page
    assert "repro bench" in page


def test_dashboard_breakdown_section(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    runs = tmp_path / "runs"
    store = RunStore(runs)
    store.append(make_record(label="plain"))  # no breakdown: skipped
    store.append(make_record(
        label="attributed",
        breakdown=make_breakdown(switch_wait=4.0, link_serial=16.0),
    ))

    page = build_dashboard(results, scale="tiny", runs_dir=runs)
    assert "Latency attribution" in page
    assert page.count("<svg") == 2  # fig11 curves + the stacked bars
    assert "mean cycles per packet" in page
    assert "link_serial" in page and "switch_wait" in page
    assert "stage table (latest run)" in page
    assert "top bottleneck links" in page
    assert "3&rarr;12" in page  # the congested serial link row
    assert "no runs with a latency breakdown yet" not in page


def test_dashboard_breakdown_empty_state(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    runs = tmp_path / "runs"
    RunStore(runs).append(make_record(label="plain"))
    page = build_dashboard(results, scale="tiny", runs_dir=runs)
    assert "no runs with a latency breakdown yet" in page
    assert "--latency-breakdown" in page


def test_dashboard_health_section(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    runs = tmp_path / "runs"
    store = RunStore(runs)
    store.append(make_record(label="plain"))  # no forensics: skipped
    store.append(make_record(
        label="probed",
        forensics={
            "health": {
                "probes": 5,
                "anomaly_count": 1,
                "flags": ["no-throughput"],
                "max_oldest_age": 480,
                "anomalies": [{"cycle": 499, "kind": "no-throughput",
                               "detail": "zero packets delivered"}],
                "oldest_age_series": [[99, 10], [199, 120], [299, 480]],
            },
            "bundle": "forensics/BUNDLE_deadlock_557.json",
        },
    ))

    page = build_dashboard(results, scale="tiny", runs_dir=runs)
    assert "Run health" in page
    assert "no-throughput" in page
    assert "<polyline" in page  # the oldest-age sparkline
    assert "BUNDLE_deadlock_557.json" in page
    assert "no runs with health probes yet" not in page


def test_dashboard_health_empty_state(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    runs = tmp_path / "runs"
    RunStore(runs).append(make_record(label="plain"))
    page = build_dashboard(results, scale="tiny", runs_dir=runs)
    assert "no runs with health probes yet" in page
    assert "--health" in page


def test_dashboard_warns_about_skipped_registry_lines(tmp_path):
    results = tmp_path / "results"
    write_fig11_csv(results)
    runs = tmp_path / "runs"
    store = RunStore(runs)
    store.append(make_record(label="good"))
    with store.path.open("a") as handle:
        handle.write("{corrupt line\n")

    page = build_dashboard(results, scale="tiny", runs_dir=runs)
    assert "1 unreadable registry line skipped" in page
    assert "good" in page  # the readable record still renders
    assert "<script" not in page  # the static page stays script-free
