"""Deadlock analysis: Lemma 1 verification for every system family.

``analyse_escape`` enumerates the escape routing subfunction's channel
dependency graph and checks connectivity and acyclicity — the two
conditions of Lemma 1.  Theorem 1 (Algorithm 1 is deadlock-free) is
verified mechanically here for concrete instances of each family.
"""

import pytest

from repro.routing.deadlock import analyse_escape, find_cycle
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid

from .conftest import make_network


@pytest.mark.parametrize(
    "family",
    ["parallel_mesh", "serial_torus", "hetero_phy_torus", "serial_hypercube", "hetero_channel"],
)
def test_escape_subfunction_satisfies_lemma1(family):
    config = SimConfig()
    _, network, _ = make_network(family, ChipletGrid(2, 2, 3, 3), config)
    analysis = analyse_escape(network)
    assert analysis.connected, f"unreachable pairs: {analysis.unreachable[:5]}"
    assert analysis.acyclic, f"dependency cycle: {analysis.cycle[:8]}"
    assert analysis.deadlock_free
    assert analysis.n_channels > 0
    assert analysis.n_dependencies > 0


def test_lemma1_holds_on_asymmetric_grid():
    config = SimConfig()
    _, network, _ = make_network("hetero_phy_torus", ChipletGrid(3, 2, 2, 4), config)
    analysis = analyse_escape(network)
    assert analysis.deadlock_free


def test_lemma1_holds_on_larger_hetero_channel():
    config = SimConfig()
    _, network, _ = make_network("hetero_channel", ChipletGrid(4, 2, 2, 2), config)
    analysis = analyse_escape(network)
    assert analysis.deadlock_free


def test_find_cycle_detects_simple_loop():
    graph = {("a", 0): {("b", 0)}, ("b", 0): {("a", 0)}}
    cycle = find_cycle(graph)
    assert cycle
    assert cycle[0] == cycle[-1] or set(cycle) <= {("a", 0), ("b", 0)}


def test_find_cycle_on_dag_returns_empty():
    graph = {
        ("a", 0): {("b", 0), ("c", 0)},
        ("b", 0): {("c", 0)},
        ("c", 0): set(),
    }
    assert find_cycle(graph) == []


def test_find_cycle_self_loop():
    graph = {("x", 1): {("x", 1)}}
    assert find_cycle(graph)


def test_broken_routing_detected_as_cyclic():
    """A torus routed with wraps in the escape set must show a cycle.

    This guards the analyser itself: if we (wrongly) put the wraparound
    channels into C0 as a ring, the dependency graph contains the classic
    torus cycle.
    """
    config = SimConfig()
    spec, network, _ = make_network("serial_torus", ChipletGrid(2, 1, 2, 2), config)
    grid = spec.grid

    def ring_routing(router, packet):
        # Route everything eastwards around the row ring on VC0 - a
        # textbook deadlocking routing function.
        if packet.dst == router.node:
            return [(0, 0, True)]
        by_tag = router.out_port_by_tag
        port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
        assert port is not None
        return [(port, 0, True)]

    network.set_routing(ring_routing)
    from repro.routing.deadlock import escape_dependency_graph

    graph = escape_dependency_graph(network)
    assert find_cycle(graph), "ring routing should produce a cyclic CDG"
