"""Tests for the differential run oracle (``repro.telemetry.diff``)."""

import json

import pytest

from repro.cli import main
from repro.telemetry import (
    Diffable,
    DiffError,
    check_golden_file,
    diff_runs,
    load_diffable,
    make_golden,
    parse_sim_spec,
    resimulate,
    write_golden,
)
from repro.telemetry.diff import PerturbedWorkload
from repro.telemetry.digest import chain_hex, golden_path
from repro.telemetry.runstore import RunStore

from .test_runstore import make_record

#: A fast, fully specified re-simulation meta shared across tests.
BASE_META = {
    "family": "parallel_mesh",
    "chiplets": [2, 2],
    "nodes": [2, 2],
    "pattern": "uniform",
    "rate": 0.1,
    "seed": 5,
    "cycles": 600,
    "warmup": 100,
    "checkpoint_every": 200,
}

BASE_SPEC = (
    "sim:family=parallel_mesh,chiplets=2x2,nodes=2x2,pattern=uniform,"
    "rate=0.1,seed=5,cycles=600,warmup=100,checkpoint_every=200"
)


def sim_diffable(label="side", **meta_overrides):
    meta = dict(BASE_META, **meta_overrides)
    stats, digest, _ = resimulate(meta)
    return Diffable(
        label=label, source="sim", digest=digest.summary(),
        stats=dict(stats.summary()),
    )


# -- sim spec parsing ---------------------------------------------------------
def test_parse_sim_spec_defaults_and_overrides():
    meta = parse_sim_spec("sim:family=serial_torus")
    assert meta["family"] == "serial_torus"
    assert meta["chiplets"] == [2, 2]
    assert meta["nodes"] == [3, 3]
    assert meta["pattern"] == "uniform"
    assert meta["cycles"] == 2_000
    assert "perturb" not in meta

    meta = parse_sim_spec(BASE_SPEC + ",policy=balanced,perturb=305")
    assert meta["nodes"] == [2, 2]
    assert meta["rate"] == 0.1
    assert meta["policy"] == "balanced"
    assert meta["perturb"] == 305
    assert meta["checkpoint_every"] == 200


def test_parse_sim_spec_rejects_malformed_specs():
    with pytest.raises(DiffError, match="requires family"):
        parse_sim_spec("sim:rate=0.1")
    with pytest.raises(DiffError, match="not key=value"):
        parse_sim_spec("sim:family=parallel_mesh,oops")
    with pytest.raises(DiffError, match="unknown sim spec key"):
        parse_sim_spec("sim:family=parallel_mesh,wombat=1")
    with pytest.raises(DiffError, match="expected e.g. 2x2"):
        parse_sim_spec("sim:family=parallel_mesh,chiplets=four")


# -- re-simulation harness ----------------------------------------------------
def test_resimulate_requires_complete_meta():
    meta = dict(BASE_META)
    del meta["seed"]
    meta["rate"] = None
    with pytest.raises(DiffError, match="missing: rate, seed"):
        resimulate(meta)


def test_resimulate_is_deterministic_and_prefix_stable():
    _, full, _ = resimulate(BASE_META, capture=(200, 200))
    _, again, _ = resimulate(BASE_META)
    assert full.final == again.final
    assert full.events_total == again.events_total
    # Truncation yields exactly the full run's chain at that cycle, which
    # is what lets localization stop simulating at the divergent interval.
    _, prefix, _ = resimulate(BASE_META, cycles=200)
    assert prefix.final == chain_hex(full.captured[200])
    assert prefix.cycles == 200


def test_resimulate_meta_lands_on_the_digest():
    _, digest, _ = resimulate(BASE_META)
    assert digest.summary()["meta"] == BASE_META


def test_perturbed_workload_injects_one_extra_packet():
    class Quiet:
        def step(self, now):
            return []

        def done(self, now):
            return now > 99

    workload = PerturbedWorkload(Quiet(), 7, src=0, dst=3)
    assert workload.step(6) == []
    [extra] = workload.step(7)
    assert (extra.src, extra.dst, extra.length) == (0, 3, 1)
    assert workload.step(8) == []
    assert not workload.done(50) and workload.done(100)


def test_perturbation_changes_the_digest():
    base = sim_diffable()
    perturbed = sim_diffable(perturb=305)
    assert base.digest["final"] != perturbed.digest["final"]


# -- diffable loading ---------------------------------------------------------
def test_load_diffable_sim_spec():
    side = load_diffable(BASE_SPEC)
    assert side.source == "sim"
    assert side.resimulable
    assert side.digest["final"] == sim_diffable().digest["final"]
    assert side.stats  # summary stats ride along for granularity 1


def test_load_diffable_golden_and_record(tmp_path):
    block = sim_diffable().digest
    golden_file = write_golden(
        make_golden("custom_case", "tiny", block),
        golden_path("custom_case", "tiny", tmp_path),
    )
    golden = load_diffable(str(golden_file))
    assert golden.source == "golden"
    assert "custom_case@tiny" in golden.label
    assert golden.digest == block

    record_file = tmp_path / "record.json"
    record_file.write_text(
        json.dumps(make_record(run_id="rec0000000001", digest=block).to_dict())
    )
    record = load_diffable(str(record_file))
    assert record.source == "record"
    assert record.digest == block


def test_load_diffable_runstore_selectors(tmp_path):
    block = sim_diffable().digest
    store = RunStore(tmp_path / "runs")
    store.append(make_record(run_id="digested00001", digest=block))
    store.append(make_record(run_id="plain00000001"))  # no digest

    # Default: the latest digest-bearing record, not the latest record.
    side = load_diffable(str(store.path))
    assert side.digest == block
    assert load_diffable(f"{store.path}#digested00001").digest == block
    with pytest.raises(DiffError, match="carries no digest"):
        load_diffable(f"{store.path}#plain00000001")
    with pytest.raises(DiffError, match="no record 'missing'"):
        load_diffable(f"{store.path}#missing")


def test_load_diffable_rejects_foreign_inputs(tmp_path):
    with pytest.raises(DiffError, match="no such file"):
        load_diffable(str(tmp_path / "absent.json"))
    bench = tmp_path / "BENCH_1.json"
    bench.write_text(json.dumps({"kind": "bench", "cases": {}}))
    with pytest.raises(DiffError, match="repro compare"):
        load_diffable(str(bench))
    mystery = tmp_path / "mystery.json"
    mystery.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(DiffError, match="not a golden trace"):
        load_diffable(str(mystery))
    record = tmp_path / "plain.json"
    record.write_text(json.dumps(make_record().to_dict()))
    with pytest.raises(DiffError, match="carries no digest"):
        load_diffable(str(record))


# -- the three-granularity diff -----------------------------------------------
def test_diff_identical_runs_stops_at_granularity_one():
    report = diff_runs(sim_diffable("a"), sim_diffable("b"))
    assert report.identical
    assert report.exit_code == 0
    assert report.divergent_cycle is None
    assert "verdict: IDENTICAL" in report.render()


def test_diff_mismatched_horizons_is_not_comparable():
    report = diff_runs(sim_diffable("a"), sim_diffable("b", cycles=400))
    assert not report.identical and not report.comparable
    assert report.exit_code == 1
    assert "verdict: NOT COMPARABLE" in report.render()
    assert any("horizons differ" in note for note in report.notes)


def test_diff_localizes_single_perturbation_to_its_exact_cycle():
    report = diff_runs(sim_diffable("base"), sim_diffable("bad", perturb=305))
    assert not report.identical
    assert report.exit_code == 1
    # Granularity 2: the census sees the one extra packet...
    census = {event: (a, b) for event, a, b in report.event_diffs}
    inject_a, inject_b = census["packet_inject"]
    assert inject_b == inject_a + 1
    # ...and checkpoint bisection brackets the divergence.
    assert report.interval == (200, 400)
    # Granularity 3: re-simulation names the exact cycle, with context.
    assert report.divergent_cycle == 305
    assert report.context
    assert all(event["cycle"] == 305 for event in report.context)
    text = report.render()
    assert "first divergent cycle: 305" in text
    assert "packet_inject" in text


def test_diff_context_cap_reports_truncation():
    report = diff_runs(
        sim_diffable("base"), sim_diffable("bad", perturb=305), context=1
    )
    assert len(report.context) == 1
    assert report.context_truncated >= 0
    if report.context_truncated:
        assert "more event(s)" in report.render()


def test_diff_no_localize_stops_at_the_checkpoint_interval():
    report = diff_runs(
        sim_diffable("base"), sim_diffable("bad", perturb=305), localize=False
    )
    assert report.interval == (200, 400)
    assert report.divergent_cycle is None
    assert not report.context


def test_diff_without_resim_meta_degrades_gracefully():
    base = sim_diffable("base")
    stranger = sim_diffable("stranger", perturb=305)
    stranger.digest["meta"] = {}  # e.g. a trace-driven run: no pattern/rate
    report = diff_runs(base, stranger)
    assert not report.identical
    assert report.interval == (200, 400)
    assert report.divergent_cycle is None
    assert any("cannot localize" in note for note in report.notes)


# -- golden record / check ----------------------------------------------------
def test_check_golden_file_roundtrip_and_tampered_mismatch(tmp_path):
    stats, digest, _ = resimulate(BASE_META)
    digest.meta = dict(BASE_META)
    doc = make_golden(
        "custom_case", "tiny", digest.summary(), stats=dict(stats.summary())
    )
    path = write_golden(doc, golden_path("custom_case", "tiny", tmp_path))
    ok, message, report = check_golden_file(path)
    assert ok and report.identical
    assert message == f"custom_case@tiny: OK ({digest.final})"

    # A golden whose recorded chain this build cannot reproduce (it was
    # recorded from perturbed behavior): the check fails with the
    # checkpoint interval, and — since re-simulating the golden's meta
    # yields current behavior, not the recorded one — it flags the
    # irreproducible side instead of inventing a divergent cycle.
    _, bad_digest, _ = resimulate(dict(BASE_META, perturb=305))
    bad_digest.meta = dict(BASE_META)  # claims to be the unperturbed run
    bad_path = write_golden(
        make_golden("custom_case", "small", bad_digest.summary()),
        golden_path("custom_case", "small", tmp_path),
    )
    ok, message, report = check_golden_file(bad_path)
    assert not ok
    assert message == "custom_case@small: DIGEST MISMATCH"
    assert report.interval == (200, 400)
    assert report.divergent_cycle is None
    assert any("did not re-simulate reproducibly" in n for n in report.notes)


# -- CLI ----------------------------------------------------------------------
def test_cli_diff_identical_and_perturbed(capsys):
    assert main(["diff", BASE_SPEC, BASE_SPEC]) == 0
    assert "verdict: IDENTICAL" in capsys.readouterr().out

    assert main(["diff", BASE_SPEC, BASE_SPEC + ",perturb=305"]) == 1
    out = capsys.readouterr().out
    assert "verdict: DIVERGED" in out
    assert "first divergent cycle: 305" in out


def test_cli_diff_bad_operand_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="no such file"):
        main(["diff", str(tmp_path / "nope.json"), BASE_SPEC])


def test_cli_golden_record_then_check(tmp_path, capsys):
    goldens = tmp_path / "goldens"
    code = main(
        ["golden", "record", "--case", "fig14_hetero_channel",
         "--dir", str(goldens)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "GOLDEN_fig14_hetero_channel_tiny.json" in out

    assert main(["golden", "check", "--dir", str(goldens)]) == 0
    assert "fig14_hetero_channel@tiny: OK" in capsys.readouterr().out


def test_cli_golden_check_without_goldens_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="no golden traces"):
        main(["golden", "check", "--dir", str(tmp_path / "empty")])


def test_cli_golden_record_rejects_unknown_case(tmp_path):
    with pytest.raises(SystemExit, match="unknown case"):
        main(["golden", "record", "--case", "fig99", "--dir", str(tmp_path)])


def test_cli_simulate_digest_prints_chain_and_records_block(tmp_path, capsys):
    runs_dir = tmp_path / "runs"
    code = main(
        ["simulate", "--family", "parallel_mesh", "--chiplets", "2x2",
         "--nodes", "2x2", "--cycles", "600", "--rate", "0.1", "--seed", "5",
         "--digest", "--runs-dir", str(runs_dir)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "digest   :" in out
    [record] = RunStore(runs_dir).load()
    assert record.digest["final"] in out
    assert record.digest["meta"]["family"] == "parallel_mesh"


# -- watch / live integration -------------------------------------------------
def test_live_feed_carries_digest_and_empty_feeds_fold(tmp_path):
    from repro.noc.flit import Packet
    from repro.telemetry import RunDigest, feed_status, read_feed
    from repro.telemetry.live import LiveFeed

    from .helpers import build_chain, run_cycles

    network, _stats = build_chain(3)
    digest = RunDigest(network)
    feed = LiveFeed(
        network, run_id="digestfeed001", directory=tmp_path / "live",
        every=10, total_cycles=40, digest=digest,
    )
    feed.start({"system": "chain", "workload": "unit"})
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 40)
    path = feed.finish(40)
    digest.detach()

    status = feed_status(read_feed(path))
    assert status["state"] == "finished"
    assert status["digest"]["final"] == digest.final
    assert status["digest"]["events_total"] == digest.events_total

    # An empty feed (crashed before its start event) folds without error.
    assert feed_status([])["state"] == "pending"
    assert feed_status([])["digest"] is None


def test_watch_determinism_badge_states(tmp_path):
    from repro.telemetry.server import WatchService

    block = sim_diffable().digest
    runs_dir = tmp_path / "runs"
    store = RunStore(runs_dir)
    store.append(make_record(run_id="match00000001", digest=block))
    service = WatchService(runs_dir)

    none = service._determinism_badge({"run_id": "other", "digest": None})
    assert "no digest" in none and "repro simulate --digest" in none

    match = service._determinism_badge(
        {"run_id": "match00000001", "digest": {"final": block["final"]}}
    )
    assert "digest match" in match and block["final"] in match

    mismatch = service._determinism_badge(
        {"run_id": "match00000001", "digest": {"final": "f" * 16}}
    )
    assert "DIGEST MISMATCH" in mismatch and 'class="alarm"' in mismatch

    feed_only = service._determinism_badge(
        {"run_id": "other", "digest": {"final": "a" * 16}}
    )
    assert "live feed only" in feed_only
    registry_only = service._determinism_badge(
        {"run_id": "match00000001", "digest": None}
    )
    assert "registry only" in registry_only


def test_fleet_and_dashboard_render_determinism_sections(tmp_path):
    from repro.telemetry.dashboard import determinism_section
    from repro.telemetry.server import WatchService

    runs_dir = tmp_path / "runs"
    store = RunStore(runs_dir)
    block = sim_diffable().digest
    store.append(make_record(digest=block))
    goldens = tmp_path / "goldens"
    write_golden(
        make_golden("custom_case", "tiny", block),
        golden_path("custom_case", "tiny", goldens),
    )

    fragment = WatchService(runs_dir).fleet_fragment()
    assert "<h2>Determinism</h2>" in fragment

    section = determinism_section(runs_dir, goldens_dir=goldens)
    assert "GOLDEN_custom_case_tiny.json" in section
    assert block["final"] in section

    # Unreadable golden files degrade to an alarm row, not a crash.
    (goldens / "GOLDEN_bad_tiny.json").write_text("{nope")
    assert "unreadable golden file" in determinism_section(
        runs_dir, goldens_dir=goldens
    )
