"""Tests for deterministic run digests (``repro.telemetry.digest``)."""

import json

import pytest

from repro.noc.flit import Packet
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.experiment import run_synthetic
from repro.sim.stats import Stats
from repro.telemetry import (
    DIGEST_ALGO,
    DIGEST_SCHEMA_VERSION,
    GOLDEN_SCHEMA_VERSION,
    DigestError,
    RunDigest,
    TelemetryConfig,
    digests_comparable,
    golden_files,
    golden_path,
    load_golden,
    make_golden,
    validate_digest_block,
    write_golden,
)
from repro.telemetry.bench import CASES, run_bench
from repro.telemetry.compare import compare_bench
from repro.telemetry.digest import chain_hex
from repro.telemetry.runstore import RunRecord, RunStore, record_from_result
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern

from .helpers import build_chain, run_cycles
from .test_runstore import make_record


def digest_chain_run(cycles=40, *, checkpoint_every=10, capture=None):
    """Digest a tiny hand-built chain run; returns (network, digest)."""
    network, _stats = build_chain(3)
    digest = RunDigest(
        network, checkpoint_every=checkpoint_every, capture=capture
    )
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, cycles)
    digest.detach()
    return network, digest


def digest_family_run(family, *, vct=True, cycles=600, warmup=100, seed=3):
    """One seeded uniform-traffic run of a family, fully digested.

    ``vct=False`` flips every router to wormhole allocation — the runtime
    knob ``build_network`` leaves at its VCT default — so the stability
    matrix covers both switching modes.
    """
    config = SimConfig(sim_cycles=cycles, warmup_cycles=warmup)
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system(family, grid, config)
    stats = Stats(measure_from=warmup)
    network = build_network(spec, stats)
    if not vct:
        for router in network.routers:
            router.vct = False
    workload = SyntheticWorkload(
        make_pattern("uniform", grid.n_nodes),
        grid.n_nodes,
        0.05,
        config.packet_length,
        until=cycles,
        seed=seed,
    )
    digest = RunDigest(network, checkpoint_every=200)
    Engine(network, workload, stats).run(cycles)
    digest.detach()
    return digest


# -- chain encoding -----------------------------------------------------------
def test_chain_hex_is_canonical_16_digit_lowercase():
    assert chain_hex(0) == "0" * 16
    assert chain_hex(0xDEADBEEF) == "00000000deadbeef"
    assert chain_hex(1 << 64) == "0" * 16  # masked to 64 bits


def test_constructor_validates_arguments():
    network, _stats = build_chain(2)
    with pytest.raises(ValueError, match="checkpoint_every"):
        RunDigest(network, checkpoint_every=0)
    with pytest.raises(ValueError, match="lo <= hi"):
        RunDigest(network, capture=(9, 3))


def test_checkpoint_cadence_and_capture_window():
    _, digest = digest_chain_run(35, checkpoint_every=10, capture=(5, 8))
    assert [cycle for cycle, _ in digest.checkpoints] == [10, 20, 30]
    assert sorted(digest.captured) == [5, 6, 7, 8]
    assert digest.cycles == 35
    # The capture window records the same chain the checkpoints sample.
    _, again = digest_chain_run(35, checkpoint_every=10, capture=(10, 10))
    assert chain_hex(again.captured[10]) == chain_hex(dict(again.checkpoints)[10])


def test_detach_stops_the_taps():
    network, _stats = build_chain(3)
    digest = RunDigest(network)
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 20)
    final, total = digest.final, digest.events_total
    digest.detach()
    digest.detach()  # idempotent
    network.inject(Packet(0, 2, 4, 20))
    run_cycles(network, 20, start=20)
    assert digest.final == final
    assert digest.events_total == total


def test_raw_pids_are_canonicalized_across_runs():
    # Packet.pid comes from a process-global counter, so the raw ids of
    # these two otherwise-identical runs differ; the digests must not.
    _, first = digest_chain_run(40)
    _, second = digest_chain_run(40)
    assert first.final == second.final
    assert first.checkpoints == second.checkpoints
    assert first.events_total == second.events_total > 0


def test_different_traffic_diverges_the_chain():
    _, first = digest_chain_run(40)
    network, _stats = build_chain(3)
    digest = RunDigest(network, checkpoint_every=10)
    network.inject(Packet(0, 1, 4, 0))  # different destination
    run_cycles(network, 40)
    digest.detach()
    assert digest.final != first.final


# -- stability matrix: 5 families x {vct, wormhole} ---------------------------
@pytest.mark.parametrize("vct", [True, False], ids=["vct", "wormhole"])
def test_same_seed_twice_is_byte_identical(family, vct):
    first = digest_family_run(family, vct=vct)
    second = digest_family_run(family, vct=vct)
    assert first.events_total > 0
    assert first.final == second.final
    assert first.checkpoints == second.checkpoints
    assert first.counts == second.counts


def test_different_seeds_diverge():
    assert (
        digest_family_run("hetero_phy_torus", seed=1).final
        != digest_family_run("hetero_phy_torus", seed=2).final
    )


# -- summary block / validation ----------------------------------------------
def test_summary_block_passes_validation_and_hides_cycle_end():
    _, digest = digest_chain_run(40)
    digest.meta = {"family": "chain"}
    block = digest.summary()
    assert validate_digest_block(block) is block
    assert block["schema_version"] == DIGEST_SCHEMA_VERSION
    assert block["algo"] == DIGEST_ALGO
    assert block["cycles"] == 40
    assert block["final"] == digest.final
    assert "cycle_end" not in block["events"]
    assert block["events"]["flit_send"] > 0
    assert block["meta"] == {"family": "chain"}
    assert block["checkpoints"] == [
        [cycle, chain_hex(chain)] for cycle, chain in digest.checkpoints
    ]


def test_validate_digest_block_rejects_malformed_blocks():
    with pytest.raises(DigestError, match="not a JSON object"):
        validate_digest_block(["nope"])
    with pytest.raises(DigestError, match="not supported"):
        validate_digest_block({"schema_version": DIGEST_SCHEMA_VERSION + 1})
    block = digest_chain_run(10)[1].summary()
    del block["final"]
    with pytest.raises(DigestError, match="missing field 'final'"):
        validate_digest_block(block)
    block = digest_chain_run(10)[1].summary()
    block["checkpoints"] = "oops"
    with pytest.raises(DigestError, match="checkpoints is not a list"):
        validate_digest_block(block)


def test_digests_comparable_reasons():
    a = digest_chain_run(20)[1].summary()
    b = digest_chain_run(20)[1].summary()
    assert digests_comparable(a, b) is None
    short = digest_chain_run(10)[1].summary()
    assert "horizons differ" in digests_comparable(a, short)
    foreign = dict(a, algo="sha256-chain-v9")
    assert "algorithms differ" in digests_comparable(a, foreign)


# -- golden traces ------------------------------------------------------------
def test_golden_roundtrip(tmp_path):
    block = digest_chain_run(40)[1].summary()
    doc = make_golden(
        "chain_case", "tiny", block,
        stats={"avg_latency": 9.0}, git_rev="cafef00d", created="2026-08-07",
    )
    assert doc["schema_version"] == GOLDEN_SCHEMA_VERSION
    path = write_golden(doc, golden_path("chain_case", "tiny", tmp_path))
    assert path.name == "GOLDEN_chain_case_tiny.json"
    loaded = load_golden(path)
    assert loaded == doc
    assert golden_files(tmp_path) == [path]
    assert golden_files(tmp_path / "missing") == []


def test_make_golden_validates_its_digest_block():
    with pytest.raises(DigestError, match="golden bad"):
        make_golden("bad", "tiny", {"schema_version": 0})


def test_load_golden_rejects_foreign_documents(tmp_path):
    bad_json = tmp_path / "GOLDEN_x_tiny.json"
    bad_json.write_text("{not json")
    with pytest.raises(DigestError, match="not valid JSON"):
        load_golden(bad_json)

    not_golden = tmp_path / "GOLDEN_y_tiny.json"
    not_golden.write_text(json.dumps({"kind": "bench"}))
    with pytest.raises(DigestError, match="not a golden-trace document"):
        load_golden(not_golden)

    block = digest_chain_run(10)[1].summary()
    doc = make_golden("z", "tiny", block)
    doc["schema_version"] = GOLDEN_SCHEMA_VERSION + 1
    foreign = tmp_path / "GOLDEN_z_tiny.json"
    foreign.write_text(json.dumps(doc))
    with pytest.raises(DigestError, match="golden schema"):
        load_golden(foreign)

    doc = make_golden("w", "tiny", block)
    del doc["scale"]
    incomplete = tmp_path / "GOLDEN_w_tiny.json"
    incomplete.write_text(json.dumps(doc))
    with pytest.raises(DigestError, match="missing field 'scale'"):
        load_golden(incomplete)


# -- run records --------------------------------------------------------------
def test_run_record_digest_roundtrips_and_old_records_load(tmp_path):
    store = RunStore(tmp_path / "runs")
    block = digest_chain_run(40)[1].summary()
    store.append(make_record(label="with", digest=block))
    # A record written before the field existed: same schema, no key.
    old = make_record(label="without").to_dict()
    del old["digest"]
    with store.path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(old) + "\n")
    loaded = store.load()
    assert loaded[0].digest == block
    assert loaded[1].digest == {}  # default for pre-digest records


def test_run_synthetic_digest_lands_on_result_and_record():
    grid = ChipletGrid(2, 2, 2, 2)
    spec = build_system("parallel_mesh", grid, SimConfig().scaled(600))
    plain = run_synthetic(spec, "uniform", 0.1, seed=3)
    assert plain.digest is None
    assert record_from_result(plain, git_rev="x").digest == {}

    result = run_synthetic(
        spec, "uniform", 0.1, seed=3, telemetry=TelemetryConfig(digest=True)
    )
    block = result.digest
    validate_digest_block(block)
    assert block["cycles"] == 600
    meta = block["meta"]
    assert meta["family"] == "parallel_mesh"
    assert meta["chiplets"] == [2, 2]
    assert meta["pattern"] == "uniform"
    assert meta["seed"] == 3
    record = record_from_result(result, git_rev="x")
    assert record.digest == block


# -- bench + compare ----------------------------------------------------------
def test_bench_case_carries_digest_and_compare_matches():
    case = next(c for c in CASES if c.name == "table3_parallel_mesh")
    doc = run_bench(scale="tiny", reps=1, seed=1, cases=[case], git_rev="x")
    block = doc["cases"][case.name]["digest"]
    validate_digest_block(block)
    assert block["meta"]["family"] == case.family

    verdicts = {
        (v.case, v.metric): v for v in compare_bench(doc, doc)
    }
    match = verdicts[(case.name, "digest.match")]
    assert match.verdict == "noise"  # identical digests
    assert match.a == match.b == 1.0


def test_compare_renders_na_when_digest_block_is_missing():
    case = next(c for c in CASES if c.name == "table3_parallel_mesh")
    doc = run_bench(scale="tiny", reps=1, seed=1, cases=[case], git_rev="x")
    old = json.loads(json.dumps(doc))
    del old["cases"][case.name]["digest"]  # a pre-digest bench file
    for a, b in ((old, doc), (doc, old), (old, old)):
        verdicts = {(v.case, v.metric): v for v in compare_bench(a, b)}
        assert verdicts[(case.name, "digest.match")].verdict == "n/a"


def test_compare_flags_digest_mismatch():
    case = next(c for c in CASES if c.name == "table3_parallel_mesh")
    doc = run_bench(scale="tiny", reps=1, seed=1, cases=[case], git_rev="x")
    drifted = json.loads(json.dumps(doc))
    drifted["cases"][case.name]["digest"]["final"] = "f" * 16
    verdicts = {(v.case, v.metric): v for v in compare_bench(doc, drifted)}
    assert verdicts[(case.name, "digest.match")].verdict == "regressed"
