"""Tests for the deterministic XY routing baseline."""

import pytest

from repro.noc.flit import Packet
from repro.routing.deadlock import analyse_escape
from repro.routing.dimension_order import DimensionOrderRouting, xy_path
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern

GRID = ChipletGrid(2, 2, 3, 3)
CONFIG = SimConfig(sim_cycles=1_500, warmup_cycles=200)


def build_xy_network():
    spec = build_system("parallel_mesh", GRID, CONFIG)
    stats = Stats(measure_from=CONFIG.warmup_cycles)
    network = build_network(spec, stats, routing=DimensionOrderRouting(spec))
    return spec, network, stats


def test_requires_mesh_family():
    spec = build_system("serial_hypercube", GRID, CONFIG)
    with pytest.raises(ValueError):
        DimensionOrderRouting(spec)


def test_single_candidate_everywhere():
    spec, network, _ = build_xy_network()
    routing = network.routers[0].routing_fn
    for node in range(GRID.n_nodes):
        for dst in range(GRID.n_nodes):
            if node == dst:
                continue
            router = network.routers[node]
            cands = routing(router, Packet(node, dst, 4, 0))
            assert len(cands) == 1
            assert cands[0][1] == 0  # VC0 only
            assert cands[0][2]  # deterministic = escape


def test_xy_order_x_before_y():
    moves = xy_path(GRID, GRID.node_at(0, 0), GRID.node_at(3, 2))
    assert moves == ["E", "E", "E", "N", "N"]
    moves = xy_path(GRID, GRID.node_at(4, 4), GRID.node_at(1, 5))
    assert moves == ["W", "W", "W", "N"]


def test_xy_is_deadlock_free():
    _, network, _ = build_xy_network()
    analysis = analyse_escape(network)
    assert analysis.deadlock_free


def test_xy_delivers_traffic():
    spec, network, stats = build_xy_network()
    workload = SyntheticWorkload(
        make_pattern("uniform", GRID.n_nodes), GRID.n_nodes, 0.1, 16,
        until=CONFIG.sim_cycles, seed=2,
    )
    Engine(network, workload, stats).run(CONFIG.sim_cycles)
    assert stats.delivered_fraction > 0.9


def test_adaptive_beats_xy_on_adversarial_pattern():
    """The value of adaptivity: transpose traffic congests fixed XY paths."""
    from repro.sim.experiment import run_synthetic

    spec = build_system("parallel_mesh", ChipletGrid(2, 2, 4, 4), CONFIG)
    adaptive = run_synthetic(spec, "transpose", 0.35, seed=3)
    stats = Stats(measure_from=CONFIG.warmup_cycles)
    network = build_network(spec, stats, routing=DimensionOrderRouting(spec))
    workload = SyntheticWorkload(
        make_pattern("transpose", 64), 64, 0.35, 16, until=CONFIG.sim_cycles, seed=3
    )
    Engine(network, workload, stats).run(CONFIG.sim_cycles)
    assert adaptive.avg_latency <= stats.avg_latency * 1.05
