"""Edge-case tests across pure helpers (degenerate grids, rounding, bounds)."""

import math

import pytest

from repro.core.interfaces import AIB, SERDES
from repro.core.vt_model import VTCurve, hetero_curve
from repro.exps.common import ExperimentResult, _fmt
from repro.routing.mesh_moves import negative_first_moves
from repro.routing.torus_moves import TorusAxisPlanner
from repro.core.weighted_path import HopCostModel
from repro.noc.channel import ChannelKind
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid
from repro.topology.multipackage import package_of
from repro.viz import render_topology


def test_single_node_chiplet_grid():
    grid = ChipletGrid(3, 3, 1, 1)
    # every node is its own chiplet's sole (interface) node
    assert grid.nodes_per_chiplet == 1
    assert all(grid.is_interface_node(n) for n in range(grid.n_nodes))
    assert grid.core_nodes() == []
    assert grid.perimeter_nodes(4) == [grid.node_of(4, 0, 0)]


def test_one_by_one_system_grid():
    grid = ChipletGrid(1, 1, 2, 2)
    assert grid.n_nodes == 4
    assert not grid.crosses_chiplet_boundary(0, "E")
    assert grid.mesh_chiplet_distance(0, 0) == 0


def test_row_and_column_grids():
    row = ChipletGrid(4, 1, 2, 1)
    assert row.height == 1
    assert row.neighbor(0, "N") is None
    col = ChipletGrid(1, 4, 1, 2)
    assert col.width == 1
    assert col.neighbor(0, "E") is None


def test_negative_first_degenerate_axes():
    # purely horizontal / vertical moves
    assert negative_first_moves((3, 0), (0, 0)) == ["W"]
    assert negative_first_moves((0, 0), (0, 3)) == ["N"]
    # one negative one positive: negative strictly first
    assert negative_first_moves((3, 0), (0, 3)) == ["W"]


def test_torus_planner_two_node_axis():
    model = HopCostModel.performance_first(SimConfig())
    planner = TorusAxisPlanner(2, 1, ChannelKind.SERIAL, model)
    dirs = planner.directions(0, 1)
    assert set(dirs) <= {1, -1} and dirs


def test_vt_zero_delay_curve():
    curve = VTCurve(bandwidth=3, delay=0)
    assert curve.volume(0) == 0
    assert curve.volume(2) == pytest.approx(6)
    assert curve.time_to_deliver(9) == pytest.approx(3)


def test_hetero_vt_with_identical_components():
    a = VTCurve(2, 5, name="a")
    hetero = hetero_curve(a, a)
    assert hetero.volume(10.0) == pytest.approx(2 * a.volume(10.0))
    assert hetero.time_to_deliver(20) < a.time_to_deliver(20)


def test_interface_phy_rounding_up_delay():
    # 7.5 ns at 2 GHz = 15 cycles exactly
    phy = SERDES.to_phy(clock_ghz=2.0, lanes=16)
    assert phy.delay == 15
    # 3.5 ns at 3 GHz = 10.5 -> rounds up to 11
    phy = AIB.to_phy(clock_ghz=3.0, lanes=64)
    assert phy.delay == 11


def test_fmt_renders_special_values():
    assert _fmt(float("nan")) == "sat"
    assert _fmt(1234.5) == "1234"  # large floats lose decimals
    assert _fmt(3.14159) == "3.14"
    assert _fmt("label") == "label"
    assert _fmt(7) == "7"


def test_experiment_result_empty_format():
    result = ExperimentResult("x", "t", ("a", "b"))
    text = result.format()
    assert "a" in text and "b" in text  # headers render without rows


def test_package_of_single_package():
    grid = ChipletGrid(4, 2, 2, 2)
    assert all(package_of(grid, c, (1, 1)) == 0 for c in range(grid.n_chiplets))


def test_package_of_full_split():
    grid = ChipletGrid(4, 2, 2, 2)
    packages = {package_of(grid, c, (4, 2)) for c in range(grid.n_chiplets)}
    assert packages == set(range(8))  # every chiplet its own package


def test_render_topology_single_chiplet():
    from repro.topology.system import build_system

    spec = build_system("parallel_mesh", ChipletGrid(1, 1, 3, 3), SimConfig())
    text = render_topology(spec)
    assert "1x1 chiplets" in text
    assert "onchip" in text


def test_config_halved_is_idempotent_at_floor():
    config = SimConfig().halved().halved().halved()
    assert config.parallel_bandwidth == 1
    assert config.serial_bandwidth == 1


def test_hop_cost_model_is_frozen():
    model = HopCostModel(SimConfig())
    with pytest.raises(Exception):
        model.alpha = 2.0
