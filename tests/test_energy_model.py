"""Tests for the energy reporting helpers."""

import pytest

from repro.energy.model import EnergyReport, energy_report
from repro.noc.flit import Packet
from repro.sim.stats import Stats


def test_report_from_stats():
    stats = Stats()
    packet = Packet(0, 1, 4, 0)
    packet.arrive_cycle = 10
    packet.energy_onchip_pj = 12.0
    packet.energy_interface_pj = 36.0
    stats.note_packet_injected(packet)
    stats.note_packet_delivered(packet, 10)
    report = energy_report(stats)
    assert report.onchip_pj == pytest.approx(12.0)
    assert report.interface_pj == pytest.approx(36.0)
    assert report.total_pj == pytest.approx(48.0)
    assert report.interface_share == pytest.approx(0.75)
    assert report.packets == 1


def test_zero_energy_share():
    report = EnergyReport(onchip_pj=0.0, interface_pj=0.0, packets=0)
    assert report.interface_share == 0.0
    assert report.total_pj == 0.0


def test_end_to_end_energy_report():
    from repro.sim.config import SimConfig
    from repro.sim.experiment import run_synthetic
    from repro.topology.grid import ChipletGrid
    from repro.topology.system import build_system

    spec = build_system(
        "hetero_phy_torus", ChipletGrid(2, 2, 3, 3), SimConfig(sim_cycles=1_200, warmup_cycles=200)
    )
    result = run_synthetic(spec, "uniform", 0.1, seed=2)
    report = energy_report(result.stats)
    assert report.total_pj > 0
    assert 0 < report.interface_share < 1
