"""Tests for the simulation engine."""

import pytest

from repro.noc.flit import Packet
from repro.sim.engine import Engine
from repro.sim.stats import DeadlockError, Stats

from .helpers import build_chain


class ListWorkload:
    """Injects a fixed list of (cycle, packet) pairs."""

    def __init__(self, items):
        self.items = sorted(items, key=lambda kv: kv[0])

    def step(self, now):
        out = [p for t, p in self.items if t == now]
        return out

    def done(self, now):
        return all(t < now for t, _ in self.items)


def test_engine_runs_and_delivers():
    network, stats = build_chain(3)
    packet = Packet(0, 2, 4, 0)
    engine = Engine(network, ListWorkload([(0, packet)]), stats)
    engine.run(30)
    assert packet.arrive_cycle is not None
    assert stats.packets_delivered == 1


def test_run_until_drained():
    network, stats = build_chain(3)
    packets = [Packet(0, 2, 4, t * 3) for t in range(5)]
    workload = ListWorkload([(p.create_cycle, p) for p in packets])
    engine = Engine(network, workload, stats)
    engine.run_until_drained(500)
    assert all(p.arrive_cycle is not None for p in packets)
    assert network.buffered_flits() == 0


def test_run_until_drained_times_out():
    # buffer too small for VCT: the packet can never advance.
    network, stats = build_chain(2, buffer_depth=8)
    packet = Packet(0, 1, 16, 0)
    engine = Engine(
        network, ListWorkload([(0, packet)]), stats, deadlock_threshold=None
    )
    with pytest.raises(RuntimeError, match="failed to drain"):
        engine.run_until_drained(200)


def test_deadlock_detection_raises():
    network, stats = build_chain(2, buffer_depth=8)
    packet = Packet(0, 1, 16, 0)
    engine = Engine(
        network, ListWorkload([(0, packet)]), stats, deadlock_threshold=50
    )
    with pytest.raises(DeadlockError):
        engine.run(1000)


def test_deadlock_threshold_ignores_idle_network():
    network, stats = build_chain(2)
    engine = Engine(network, ListWorkload([]), stats, deadlock_threshold=50)
    engine.run(500)  # must not raise: nothing is buffered


def test_engine_resumable():
    network, stats = build_chain(2)
    packet = Packet(0, 1, 2, 5)
    engine = Engine(network, ListWorkload([(5, packet)]), stats)
    engine.run(3)
    assert engine.cycle == 3
    assert packet.arrive_cycle is None
    engine.run(30)
    assert engine.cycle == 33
    assert packet.arrive_cycle is not None


def test_injection_counted(config=None):
    network, stats = build_chain(2)
    engine = Engine(network, ListWorkload([(0, Packet(0, 1, 4, 0))]), stats)
    engine.run(20)
    assert stats.packets_injected == 1
    assert stats.flits_injected == 4
