"""Tests for the experiment harness."""

import math

import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import (
    SweepPoint,
    latency_rate_sweep,
    run_synthetic,
    run_trace,
    saturation_rate,
)
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.trace import Trace, TraceRecord

CONFIG = SimConfig(sim_cycles=1_200, warmup_cycles=200)
GRID = ChipletGrid(2, 2, 3, 3)


def spec():
    return build_system("hetero_phy_torus", GRID, CONFIG)


def test_run_synthetic_returns_result():
    result = run_synthetic(spec(), "uniform", 0.1)
    assert result.n_nodes == 36
    assert result.cycles == 1_200
    assert result.workload == "uniform@0.1"
    assert result.stats.packets_delivered > 0
    assert not result.saturated


def test_run_synthetic_policy_override():
    result = run_synthetic(spec(), "uniform", 0.1, policy="energy_efficient")
    assert result.policy == "energy_efficient"
    assert result.phy_split[1] == 0


def test_run_trace_collects_phy_split():
    records = [TraceRecord(t, 0, 35, 8) for t in range(0, 200, 20)]
    result = run_trace(spec(), Trace(records, name="t"))
    assert result.stats.packets_delivered == len(records)
    assert result.workload == "t"


def test_run_trace_strict_raises_on_overload():
    # one packet per cycle from everyone to node 0: cannot drain in margin.
    records = [
        TraceRecord(t, src, 0, 16)
        for t in range(50)
        for src in range(1, 36)
    ]
    with pytest.raises(RuntimeError):
        run_trace(spec(), Trace(records, name="flood"), drain_margin=50)


def test_run_trace_nonstrict_returns_partial():
    records = [
        TraceRecord(t, src, 0, 16)
        for t in range(50)
        for src in range(1, 36)
    ]
    result = run_trace(spec(), Trace(records, name="flood"), drain_margin=50, strict=False)
    assert result.stats.delivered_fraction < 1.0


def test_sweep_stops_after_saturation():
    points = latency_rate_sweep(
        spec(), "uniform", [0.05, 2.0, 3.0, 4.0], cycles=800, warmup=100
    )
    # sweeping stops at the first saturated point: it may only be the last.
    assert len(points) < 4
    for point in points[:-1]:
        assert not point.saturated


def test_sweep_point_saturation_flags():
    ok = SweepPoint(0.1, 30.0, 0.99, 100.0)
    bad = SweepPoint(0.5, 300.0, 0.3, 100.0)
    nan = SweepPoint(0.5, math.nan, math.nan, math.nan)
    assert not ok.saturated
    assert bad.saturated
    assert nan.saturated


def test_saturation_rate_picks_last_good():
    points = [
        SweepPoint(0.1, 30, 0.99, 1),
        SweepPoint(0.2, 40, 0.98, 1),
        SweepPoint(0.3, 500, 0.2, 1),
    ]
    assert saturation_rate(points) == 0.2
    assert math.isnan(saturation_rate([points[2]]))
