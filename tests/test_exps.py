"""Tests for the experiment modules (tiny scale).

Each paper artifact's experiment must run and reproduce its qualitative
shape at least at tiny scale.  The heavier cross-checks live in the
benchmarks; these tests pin the structural properties.
"""

import math

import pytest

from repro.exps import EXPERIMENTS
from repro.exps import fig8, table1, table4
from repro.exps.common import ExperimentResult, current_scale, reduction


def test_registry_covers_every_artifact():
    expected = {
        "table1",
        "fig8",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "table3",
        "table4",
        "fig16",
        "fig17",
        "fig18",
    }
    assert set(EXPERIMENTS) == expected


def test_current_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
    assert current_scale() == "small"
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert current_scale() == "tiny"
    monkeypatch.setenv("REPRO_FULL_SCALE", "1")
    assert current_scale() == "paper"
    monkeypatch.setenv("REPRO_SCALE", "warp")
    monkeypatch.delenv("REPRO_FULL_SCALE")
    with pytest.raises(ValueError):
        current_scale()


def test_experiment_result_helpers():
    result = ExperimentResult("x", "t", ("a", "b"))
    result.add(1, 2.0)
    result.add(1, 4.0)
    assert result.column("b") == [2.0, 4.0]
    assert len(result.filtered(a=1)) == 2
    with pytest.raises(ValueError):
        result.add(1)
    with pytest.raises(ValueError):
        result.value("b", a=1)  # ambiguous
    text = result.format()
    assert "a" in text and "2.00" in text
    assert result.to_csv().splitlines()[0] == "a,b"


def test_reduction_helper():
    assert reduction(100, 80) == pytest.approx(0.2)
    assert math.isnan(reduction(0, 10))
    assert math.isnan(reduction(float("nan"), 10))


def test_fig8_hetero_dominates():
    result = fig8.run("tiny")
    for row in result.rows:
        t, parallel, serial, compromised, hetero, _half = row
        assert hetero >= max(parallel, serial) - 1e-9
        assert hetero == pytest.approx(parallel + serial)


def test_fig8_intercepts():
    result = fig8.run("tiny")
    # At t=5 (parallel delay) everything is still ~zero; serial stays zero
    # until t=20.
    t_vals = result.column("t_cycles")
    idx = min(range(len(t_vals)), key=lambda i: abs(t_vals[i] - 15))
    assert result.rows[idx][2] == 0.0  # serial column before its delay


def test_table1_shape():
    result = table1.run("tiny")
    assert len(result.rows) == 5
    assert result.value("pj_per_bit", interface="AIB") == 0.5


def test_table4_overheads():
    result = table4.run("tiny")
    area = {row[0]: row[1] for row in result.rows}
    assert area["hetero_router"] > area["router"]
    assert any("overhead" in note for note in result.notes)


@pytest.mark.slow
def test_fig16_energy_orderings():
    result = EXPERIMENTS["fig16"]("tiny")
    # The serial-IF baseline is always the most energy-hungry under
    # uniform traffic (Sec 8.3).
    for group, baseline in (
        ("hetero-phy", "serial-torus"),
        ("hetero-channel", "serial-hypercube"),
    ):
        rows = result.filtered(group=group)
        by_net = {}
        for row in rows:
            by_net.setdefault(row[1], []).append(row[5])
        serial = min(by_net[baseline])
        others = [min(v) for k, v in by_net.items() if k != baseline]
        assert all(serial >= other for other in others)


@pytest.mark.slow
def test_fig18_serial_penalized_locally():
    result = EXPERIMENTS["fig18"]("tiny")
    spans = sorted(set(result.column("span")))
    small = spans[0]
    rows = {row[1]: row[2] for row in result.filtered(span=small)}
    assert rows["serial-torus"] >= rows["parallel-mesh"]
    # hetero tracks the better of the two at local scales
    assert rows["hetero-phy-full"] <= rows["serial-torus"] + 1e-6
