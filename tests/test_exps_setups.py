"""The experiment setups must match the paper's configurations at `paper` scale."""

from repro.exps import fig11, fig12, fig13, fig14, fig15, fig16, fig18, table3
from repro.exps.common import HORIZONS, SCALES, scaled_config


def test_scales_defined_everywhere():
    for table in (fig11.GRIDS, fig11.RATES, fig13.SETUPS, fig14.GRIDS,
                  fig14.RATES, fig15.SETUPS, fig16.GRIDS, fig18.GRIDS,
                  fig12.APPS, fig12.DURATIONS):
        assert set(table) == set(SCALES)


def test_paper_scale_matches_table2_horizon():
    assert HORIZONS["paper"] == (100_000, 10_000)
    config = scaled_config("paper")
    assert config.sim_cycles == 100_000
    assert config.warmup_cycles == 10_000
    assert config.packet_length == 16


def test_fig11_paper_system_is_256_nodes():
    grid = fig11.GRIDS["paper"]
    assert (grid.chiplets_x, grid.chiplets_y) == (4, 4)
    assert (grid.nodes_x, grid.nodes_y) == (4, 4)
    assert grid.n_nodes == 256


def test_fig12_system_is_64_nodes_at_all_scales():
    assert fig12.GRID.n_nodes == 64
    assert (fig12.GRID.chiplets_x, fig12.GRID.nodes_x) == (4, 2)
    assert len(fig12.APPS["paper"]) == 9


def test_fig13_paper_system_is_1296_nodes_1024_ranks():
    grid, ranks, _cns, _moc, _scales = fig13.SETUPS["paper"]
    assert grid.n_nodes == 1296
    assert (grid.chiplets_x, grid.nodes_x) == (6, 6)
    assert ranks == 1024


def test_fig14_paper_system_is_3136_nodes():
    grid = fig14.GRIDS["paper"]
    assert grid.n_nodes == 3136
    assert grid.n_chiplets == 64
    assert (grid.nodes_x, grid.nodes_y) == (7, 7)


def test_fig15_paper_core_nodes_fit_ranks():
    grid, ranks, _cns, _moc, _scales = fig15.SETUPS["paper"]
    assert ranks == 1024
    assert len(grid.core_nodes()) >= ranks  # 25 core nodes x 64 chiplets


def test_table3_covers_paper_scales():
    labels = [label for label, _grid, _ch in table3.PAPER_SCALES]
    assert labels == ["4x(2x2)", "16x(2x2)", "16x(4x4)", "16x(6x6)", "64x(7x7)"]
    sizes = [grid.n_nodes for _l, grid, _ch in table3.PAPER_SCALES]
    assert sizes == [16, 64, 256, 576, 3136]
    # hetero-channel evaluated only for the three largest scales (paper
    # leaves the small rows blank)
    flags = [ch for _l, _g, ch in table3.PAPER_SCALES]
    assert flags == [False, False, True, True, True]


def test_fig16_paper_systems_match_sections():
    phy_grid, channel_grid = fig16.GRIDS["paper"]
    assert phy_grid.n_nodes == 1296  # "the large-scale 2D system of Sec 8.1.1"
    assert channel_grid.n_nodes == 3136  # the Sec 8.1.2 system


def test_fig18_spans_end_at_full_machine():
    grid = fig18.GRIDS["paper"]
    spans = fig18.spans_for(grid)
    assert spans[0] == 2
    assert spans[-1] == grid.width
    assert all(a < b for a, b in zip(spans, spans[1:]))
