"""Tests for fault injection and the channel-diversity claim (Sec 9)."""

import pytest

from repro.noc.flit import Packet
from repro.routing.deadlock import analyse_escape
from repro.routing.fault import (
    FaultTolerantRouting,
    UnroutableError,
    adaptive_link_indices,
    apply_faults,
    fail_random_links,
)
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern

from .conftest import make_network

CONFIG = SimConfig(sim_cycles=1_500, warmup_cycles=200)
GRID = ChipletGrid(2, 2, 3, 3)


def run_uniform(network, stats, n_nodes, rate=0.1, cycles=1_500, seed=3):
    pattern = make_pattern("uniform", n_nodes)
    workload = SyntheticWorkload(pattern, n_nodes, rate, 16, until=cycles, seed=seed)
    Engine(network, workload, stats).run(cycles)
    return stats


def test_adaptive_links_identified_per_family():
    expectations = {
        "parallel_mesh": 0,
        "serial_torus": 24,  # the wraparound channels
        "hetero_phy_torus": 24,
        "serial_hypercube": 0,
        "hetero_channel": 32,  # 2 dims x 2 pairs x 4 links x 2 directions
    }
    for family, expected in expectations.items():
        spec, network, _ = make_network(family, GRID, CONFIG)
        assert len(adaptive_link_indices(network, spec)) == expected, family


def test_apply_faults_validates_indices():
    spec, network, _ = make_network("serial_torus", GRID, CONFIG)
    with pytest.raises(ValueError):
        apply_faults(network, [10**6])


def test_fail_random_links_count_check():
    spec, network, _ = make_network("serial_torus", GRID, CONFIG)
    safe = adaptive_link_indices(network, spec)
    with pytest.raises(ValueError):
        fail_random_links(network, safe, len(safe) + 1)


def test_failed_adaptive_links_keep_lemma1():
    """Failing wraparounds leaves the escape mesh untouched (still safe)."""
    spec, network, _ = make_network("hetero_phy_torus", GRID, CONFIG)
    safe = adaptive_link_indices(network, spec)
    fail_random_links(network, safe, len(safe) // 2, seed=1)
    analysis = analyse_escape(network)
    assert analysis.deadlock_free


def test_traffic_survives_wraparound_failures():
    spec, network, stats = make_network("hetero_phy_torus", GRID, CONFIG)
    safe = adaptive_link_indices(network, spec)
    failed = fail_random_links(network, safe, len(safe) // 2, seed=2)
    run_uniform(network, stats, GRID.n_nodes)
    assert stats.packets_delivered > 50
    assert stats.delivered_fraction > 0.9
    # no flit ever crossed a failed link
    for index in failed:
        assert network.links[index].occupancy == 0


def test_hetero_channel_survives_all_cube_failures():
    """Killing the entire hypercube leaves a working parallel mesh."""
    spec, network, stats = make_network("hetero_channel", GRID, CONFIG)
    cube = adaptive_link_indices(network, spec)
    apply_faults(network, cube)
    analysis = analyse_escape(network)
    assert analysis.deadlock_free
    run_uniform(network, stats, GRID.n_nodes)
    assert stats.delivered_fraction > 0.9


def test_hypercube_breaks_under_cube_failure():
    """The uniform hypercube has no redundant escape: a failed cube link
    strands packets (channel diversity is what hetero-IF adds)."""
    spec, network, _ = make_network("serial_hypercube", GRID, CONFIG)
    cube_links = [
        i for i, c in enumerate(network.specs) if c.tag is not None and c.tag[0] == "cube"
    ]
    apply_faults(network, cube_links[:2])
    stats = Stats(measure_from=0)
    with pytest.raises(UnroutableError):
        # drive enough traffic that some packet needs the failed link
        pattern = make_pattern("uniform", GRID.n_nodes)
        workload = SyntheticWorkload(pattern, GRID.n_nodes, 0.2, 4, until=800, seed=5)
        network.stats = stats  # keep counters local to this run
        for router in network.routers:
            router._stats = stats
        Engine(network, workload, stats).run(800)


def test_fault_wrapper_filters_only_failed():
    spec, network, _ = make_network("serial_torus", GRID, CONFIG)
    router = network.routers[0]
    base = router.routing_fn
    packet = Packet(0, GRID.n_nodes - 1, 16, 0)
    before = base(router, packet)
    safe = adaptive_link_indices(network, spec)
    apply_faults(network, safe)
    packet2 = Packet(0, GRID.n_nodes - 1, 16, 0)
    after = router.routing_fn(router, packet2)
    assert set(after) <= set(before)
    for cand in after:
        link = router.outputs[cand[0]].link
        assert link is None or link.index not in set(safe)
