"""Unit tests for the flit/packet data model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.flit import FLIT_BITS, Flit, Packet


def test_packet_basic_fields():
    packet = Packet(1, 2, 16, 100)
    assert packet.src == 1
    assert packet.dst == 2
    assert packet.length == 16
    assert packet.create_cycle == 100
    assert packet.arrive_cycle is None
    assert packet.latency is None


def test_packet_rejects_zero_length():
    with pytest.raises(ValueError):
        Packet(0, 1, 0, 0)


def test_packet_rejects_self_loop():
    with pytest.raises(ValueError):
        Packet(3, 3, 1, 0)


def test_packet_ids_unique():
    a = Packet(0, 1, 1, 0)
    b = Packet(0, 1, 1, 0)
    assert a.pid != b.pid


def test_packet_bits():
    packet = Packet(0, 1, 4, 0)
    assert packet.bits == 4 * FLIT_BITS


def test_latency_after_arrival():
    packet = Packet(0, 1, 1, 10)
    packet.arrive_cycle = 35
    assert packet.latency == 25


def test_energy_sums_components():
    packet = Packet(0, 1, 1, 0)
    packet.energy_onchip_pj = 3.0
    packet.energy_interface_pj = 4.5
    assert packet.energy_pj == pytest.approx(7.5)


def test_make_flits_single():
    packet = Packet(0, 1, 1, 0)
    flits = packet.make_flits()
    assert len(flits) == 1
    assert flits[0].is_head and flits[0].is_tail


@given(length=st.integers(min_value=1, max_value=64))
def test_make_flits_structure(length):
    packet = Packet(0, 1, length, 0)
    flits = packet.make_flits()
    assert len(flits) == length
    assert flits[0].is_head
    assert flits[-1].is_tail
    assert sum(f.is_head for f in flits) == 1
    assert sum(f.is_tail for f in flits) == 1
    assert [f.index for f in flits] == list(range(length))
    assert all(f.packet is packet for f in flits)


def test_flit_destination_delegates_to_packet():
    packet = Packet(7, 9, 2, 0)
    head = packet.make_flits()[0]
    assert head.dst == 9
    assert head.src == 7


def test_flit_sequence_number_defaults_none():
    flit = Packet(0, 1, 1, 0).make_flits()[0]
    assert flit.sn is None
    assert not flit.bypassed


def test_packet_defaults():
    packet = Packet(0, 1, 1, 0)
    assert packet.ordered
    assert packet.priority == 0
    assert packet.msg_class == "data"
    assert not packet.adaptive_banned
    assert packet.subnet_choice is None


def test_packet_metadata_roundtrip():
    packet = Packet(0, 1, 1, 0, ordered=False, priority=3, msg_class="bulk")
    assert not packet.ordered
    assert packet.priority == 3
    assert packet.msg_class == "bulk"
