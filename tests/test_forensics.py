"""Flight recorder, health monitor and postmortem forensics.

The anchor test forces the textbook routing deadlock (eastward-only ring
routing on a torus row), lets the engine's failure path capture a bundle,
and cross-checks the *dynamic* wait-for cycle against the *static*
channel dependency graph — the runtime forensics and the
:mod:`repro.analysis` prediction must name the same channel loop.
A second anchor proves the recorder and monitor are strictly passive:
attaching them changes no simulation result.
"""

import json

import pytest

from repro.analysis.cdg import build_cdg
from repro.noc import router as router_mod
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import DeadlockError, DrainTimeoutError, Stats
from repro.telemetry.forensics import (
    FORENSICS_SCHEMA_VERSION,
    FlightRecorder,
    ForensicsConfig,
    ForensicsSession,
    HealthMonitor,
    HealthThresholds,
    _VC_ACTIVE,
    _VC_IDLE,
    _VC_VA,
    capture_bundle,
    cycle_in_graph,
    extract_wait_graph,
    load_bundle,
    render_bundle_html,
    render_bundle_text,
    validate_bundle,
    waitfor_cycle_channels,
    write_bundle,
)
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic import SyntheticWorkload
from repro.traffic.patterns import make_pattern

from .conftest import make_network
from .test_engine import ListWorkload
from .helpers import build_chain


def test_vc_state_constants_mirror_router():
    # extract_wait_graph reads router VC state without importing repro.noc
    # at module load; this pin keeps the duplicated constants honest.
    assert _VC_IDLE == router_mod.VC_IDLE
    assert _VC_VA == router_mod.VC_VA
    assert _VC_ACTIVE == router_mod.VC_ACTIVE


# -- the forced deadlock ------------------------------------------------------


def ring_routing(router, packet):
    """Eastward-only ring routing on a torus row: deadlock-prone."""
    if packet.dst == router.node:
        return [(0, 0, True)]
    by_tag = router.out_port_by_tag
    port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
    if port is None:
        port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
    return [(port, 0, True)]


def run_ring_deadlock(tmp_path, *, recorder=False, health=False):
    """Drive the ring to deadlock with forensics attached; return
    (network, DeadlockError, session)."""
    grid = ChipletGrid(2, 1, 2, 2)
    config = SimConfig(sim_cycles=4_000, warmup_cycles=0)
    spec = build_system("serial_torus", grid, config)
    stats = Stats()
    network = build_network(spec, stats, routing=ring_routing)
    session = ForensicsSession(
        network,
        ForensicsConfig(
            bundle_dir=tmp_path / "forensics",
            flight_recorder=recorder,
            health=health,
            health_every=250,
        ),
    )
    pattern = make_pattern("uniform", grid.n_nodes)
    workload = SyntheticWorkload(
        pattern, grid.n_nodes, 1.0, config.packet_length, seed=3
    )
    engine = Engine(network, workload, stats, deadlock_threshold=300)
    engine.forensics = session
    with pytest.raises(DeadlockError) as excinfo:
        engine.run(4_000)
    return network, excinfo.value, session


def test_deadlock_bundle_cycle_matches_static_cdg(tmp_path):
    network, error, session = run_ring_deadlock(
        tmp_path, recorder=True, health=True
    )
    assert error.bundle_path is not None
    bundle = load_bundle(error.bundle_path)
    assert bundle["reason"] == "deadlock"
    assert bundle["error_type"] == "DeadlockError"
    assert bundle["network"]["buffered_flits"] > 0

    # The dynamic wait-for cycle must be a closed walk of the static CDG
    # under both flow-control assumptions (wormhole edges are a superset
    # of VCT edges, so the stricter vct check implies the wormhole one).
    cycle = waitfor_cycle_channels(bundle)
    assert len(cycle) >= 2
    for mode in ("vct", "wormhole"):
        cdg = build_cdg(network, mode=mode)
        assert cycle_in_graph(cycle, cdg.edges), (
            f"wait-for cycle {cycle} is not a cycle of the {mode} CDG"
        )
    # And the static analysis itself predicts a cycle for this routing.
    assert build_cdg(network, mode="vct").cycle()

    # Forensics extras made it into the bundle.
    assert bundle["recorder"]["events_recorded"] > 0
    assert bundle["health"]["probes"] > 0
    assert "no-throughput" in bundle["health"]["flags"]
    assert bundle["packets"]["total"] > 0
    stages = {entry["stage"] for entry in bundle["packets"]["table"]}
    assert stages <= {
        "source_queue", "va_wait", "credit_stall", "switch_wait",
        "link_onchip", "link_parallel", "link_serial", "phy_tx_queue",
        "phy_parallel", "phy_serial", "rob_wait", "ejection",
    }


def test_deadlock_bundle_renders_text_and_html(tmp_path):
    _network, error, _session = run_ring_deadlock(tmp_path, recorder=True)
    bundle = load_bundle(error.bundle_path)
    text = render_bundle_text(bundle)
    assert "wait-for cycle" in text
    assert "in-flight packets" in text
    assert "flight recorder" in text
    page = render_bundle_html(bundle)
    assert page.startswith("<!DOCTYPE html>")
    assert "<svg" in page
    assert "wf-arrow-cycle" in page  # the highlighted deadlock loop
    assert "<script" not in page  # self-contained, no scripting


def test_engine_without_forensics_still_raises(tmp_path):
    grid = ChipletGrid(2, 1, 2, 2)
    config = SimConfig(sim_cycles=4_000, warmup_cycles=0)
    spec = build_system("serial_torus", grid, config)
    stats = Stats()
    network = build_network(spec, stats, routing=ring_routing)
    pattern = make_pattern("uniform", grid.n_nodes)
    workload = SyntheticWorkload(
        pattern, grid.n_nodes, 1.0, config.packet_length, seed=3
    )
    engine = Engine(network, workload, stats, deadlock_threshold=300)
    with pytest.raises(DeadlockError) as excinfo:
        engine.run(4_000)
    assert excinfo.value.bundle_path is None


# -- passivity: attaching forensics must not change results -------------------


def _run_reference(telemetry=None):
    from repro.sim.experiment import run_synthetic

    grid = ChipletGrid(2, 2, 2, 2)
    config = SimConfig(sim_cycles=1_500, warmup_cycles=100)
    spec = build_system("hetero_phy_torus", grid, config)
    return run_synthetic(spec, "uniform", 0.15, seed=11, telemetry=telemetry)


def test_recorder_and_monitor_are_passive(tmp_path):
    from repro.telemetry import TelemetryConfig

    plain = _run_reference()
    observed = _run_reference(
        TelemetryConfig(
            epoch_metrics=False,
            forensics=True,
            bundle_dir=tmp_path / "forensics",
            flight_recorder=True,
            recorder_events="full",
            health=True,
            health_every=200,
        )
    )
    assert observed.stats.summary() == plain.stats.summary()
    assert observed.stats.latencies == plain.stats.latencies
    session = observed.telemetry.forensics
    assert len(session.recorder) > 0
    assert session.monitor.probes
    assert session.bundle_path is None  # clean run: nothing captured


# -- drain timeout ------------------------------------------------------------


def test_drain_timeout_carries_census_and_bundle(tmp_path):
    from repro.noc.flit import Packet

    network, stats = build_chain(2, buffer_depth=8)
    session = ForensicsSession(
        network, ForensicsConfig(bundle_dir=tmp_path / "forensics")
    )
    packet = Packet(0, 1, 16, 0)
    engine = Engine(
        network, ListWorkload([(0, packet)]), stats, deadlock_threshold=None
    )
    engine.forensics = session
    with pytest.raises(RuntimeError, match="failed to drain") as excinfo:
        engine.run_until_drained(200)
    error = excinfo.value
    assert isinstance(error, DrainTimeoutError)
    assert isinstance(error, DeadlockError)  # except DeadlockError still works
    assert error.max_cycles == 200
    assert sum(error.census.values()) == error.buffered > 0
    assert error.bundle_path is not None
    bundle = load_bundle(error.bundle_path)
    assert bundle["reason"] == "drain-timeout"


# -- flight recorder units ----------------------------------------------------


def _tiny_network():
    config = SimConfig(sim_cycles=600, warmup_cycles=0)
    grid = ChipletGrid(2, 1, 2, 2)
    spec, network, stats = make_network("parallel_mesh", grid, config)
    return grid, config, network, stats


def _drive(network, stats, grid, config, cycles=400, rate=0.2, seed=5):
    pattern = make_pattern("uniform", grid.n_nodes)
    workload = SyntheticWorkload(
        pattern, grid.n_nodes, rate, config.packet_length, seed=seed
    )
    Engine(network, workload, stats, deadlock_threshold=None).run(cycles)


def test_recorder_window_evicts_old_events():
    grid, config, network, stats = _tiny_network()
    recorder = FlightRecorder(network, window=50, events="packet")
    _drive(network, stats, grid, config, cycles=400)
    events = recorder.events()
    assert events, "a loaded run must record events"
    assert min(e["cycle"] for e in events) >= recorder.now - 50
    tail = recorder.tail(5)
    assert len(tail) == 5
    assert tail == events[-5:]
    assert recorder.tail(0) == []


def test_recorder_max_events_cap_counts_drops():
    grid, config, network, stats = _tiny_network()
    recorder = FlightRecorder(
        network, window=10_000, events="full", max_events=100
    )
    _drive(network, stats, grid, config, cycles=400)
    assert len(recorder) <= 100
    assert recorder.dropped > 0


def test_recorder_detach_stops_recording():
    grid, config, network, stats = _tiny_network()
    recorder = FlightRecorder(network, window=10_000)
    recorder.detach()
    _drive(network, stats, grid, config, cycles=100)
    assert len(recorder) == 0
    # Idempotent, and the bus is back to the zero-cost path.
    recorder.detach()
    assert network.telemetry.packet_inject is None


def test_recorder_rejects_bad_configuration():
    _grid, _config, network, _stats = _tiny_network()
    with pytest.raises(ValueError, match="unknown recorder preset"):
        FlightRecorder(network, events="verbose")
    with pytest.raises(ValueError, match="unknown telemetry event"):
        FlightRecorder(network, events=("no_such_event",))
    with pytest.raises(ValueError):
        FlightRecorder(network, window=0)
    with pytest.raises(ValueError):
        FlightRecorder(network, max_events=0)


# -- health monitor units -----------------------------------------------------


def test_health_monitor_probes_and_flags_rising_edges():
    import io

    grid, config, network, stats = _tiny_network()
    stream = io.StringIO()
    monitor = HealthMonitor(
        network,
        every=100,
        thresholds=HealthThresholds(max_packet_age=1, max_stall_rate=0.0),
        stream=stream,
    )
    _drive(network, stats, grid, config, cycles=400, rate=0.3)
    assert len(monitor.probes) == 4
    kinds = {a.kind for a in monitor.anomalies}
    assert "packet-age" in kinds
    assert "[health]" in stream.getvalue()
    summary = monitor.summary()
    assert summary["probes"] == 4
    assert summary["anomaly_count"] == len(monitor.anomalies)
    assert "packet-age" in summary["flags"]
    assert len(summary["oldest_age_series"]) == 4


def test_health_monitor_flags_rising_edges_only():
    from repro.noc.flit import Packet

    _grid, _config, network, _stats = _tiny_network()
    monitor = HealthMonitor(
        network, every=100, thresholds=HealthThresholds(max_packet_age=1)
    )
    # inject() fires packet_inject on the bus, so the monitor sees it.
    network.inject(Packet(0, 3, length=4, create_cycle=0))
    monitor.probe(1_000)
    monitor.probe(1_100)  # still over threshold: no second flag
    assert sum(a.kind == "packet-age" for a in monitor.anomalies) == 1


def test_health_monitor_quiet_on_healthy_run():
    grid, config, network, stats = _tiny_network()
    monitor = HealthMonitor(network, every=100)
    _drive(network, stats, grid, config, cycles=400, rate=0.05)
    assert monitor.probes
    assert monitor.anomalies == []
    monitor.detach()
    assert network.telemetry.cycle_end is None


# -- wait-for graph and bundle plumbing ---------------------------------------


def test_wait_graph_empty_on_idle_network():
    _grid, _config, network, _stats = _tiny_network()
    graph = extract_wait_graph(network, 0)
    assert graph == {"blocked": [], "edges": [], "cycle": []}


def test_cycle_in_graph_checks_the_wraparound():
    edges = {(0, 0): {(1, 0)}, (1, 0): {(2, 0)}, (2, 0): {(0, 0)}}
    assert cycle_in_graph([(0, 0), (1, 0), (2, 0)], edges)
    assert not cycle_in_graph([(0, 0), (2, 0), (1, 0)], edges)
    assert not cycle_in_graph([], edges)
    # Break the wrap-around edge specifically.
    open_edges = {(0, 0): {(1, 0)}, (1, 0): {(2, 0)}, (2, 0): set()}
    assert not cycle_in_graph([(0, 0), (1, 0), (2, 0)], open_edges)


def test_manual_capture_roundtrip(tmp_path):
    _grid, _config, network, _stats = _tiny_network()
    bundle = capture_bundle(network, now=0, reason="manual")
    validate_bundle(bundle)
    path = write_bundle(bundle, tmp_path)
    assert path.name == "BUNDLE_manual_0.json"
    again = write_bundle(bundle, tmp_path)  # collision gets a serial suffix
    assert again.name == "BUNDLE_manual_0_1.json"
    assert load_bundle(path) == bundle


def test_validate_bundle_rejects_malformed_input(tmp_path):
    with pytest.raises(ValueError, match="not a JSON object"):
        validate_bundle([])
    _grid, _config, network, _stats = _tiny_network()
    bundle = capture_bundle(network, now=0, reason="manual")
    missing = dict(bundle)
    del missing["waitfor"]
    with pytest.raises(ValueError, match="missing keys: waitfor"):
        validate_bundle(missing)
    wrong_version = dict(bundle, schema_version=FORENSICS_SCHEMA_VERSION + 1)
    with pytest.raises(ValueError, match="not supported"):
        validate_bundle(wrong_version)
    broken = dict(bundle, waitfor={"blocked": []})
    with pytest.raises(ValueError, match="wait-for graph is malformed"):
        validate_bundle(broken)
    path = tmp_path / "junk.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ValueError, match="cannot read bundle"):
        load_bundle(path)


def test_record_summary_shapes(tmp_path):
    _grid, _config, network, _stats = _tiny_network()
    session = ForensicsSession(
        network, ForensicsConfig(bundle_dir=tmp_path / "forensics")
    )
    assert session.record_summary() == {}
    session.capture_to_file("manual", 0)
    summary = session.record_summary()
    assert summary["bundle"].endswith("BUNDLE_manual_0.json")


# -- CLI ----------------------------------------------------------------------


def _write_deadlock_bundle(tmp_path):
    _network, error, _session = run_ring_deadlock(tmp_path, recorder=True)
    return error.bundle_path


def test_cli_postmortem_renders_bundle(tmp_path, capsys):
    from repro.cli import main

    path = _write_deadlock_bundle(tmp_path)
    html_out = tmp_path / "report.html"
    assert main(["postmortem", str(path), "--html", str(html_out)]) == 0
    out = capsys.readouterr().out
    assert "wait-for cycle" in out
    assert f"wrote {html_out}" in out
    assert "<svg" in html_out.read_text(encoding="utf-8")


def test_cli_postmortem_rejects_junk(tmp_path):
    from repro.cli import main

    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"schema_version": 99}), encoding="utf-8")
    with pytest.raises(SystemExit, match="cannot load bundle"):
        main(["postmortem", str(path)])


def test_cli_simulate_reports_wedge_and_exits_nonzero(
    tmp_path, monkeypatch, capsys
):
    import repro.cli as cli

    def wedge(*_args, **_kwargs):
        error = DeadlockError(42, 7, 301)
        error.bundle_path = str(tmp_path / "BUNDLE_deadlock_42.json")
        raise error

    monkeypatch.setattr(cli, "run_synthetic", wedge)
    code = cli.main(
        ["simulate", "--family", "serial_torus", "--chiplets", "2x1",
         "--nodes", "2x2", "--cycles", "500", "--no-record",
         "--forensics-dir", str(tmp_path)]
    )
    assert code == 3
    err = capsys.readouterr().err
    assert "DeadlockError" in err
    assert "postmortem bundle:" in err
    assert "repro postmortem" in err
