"""Golden regression values.

Simulations are deterministic given a seed, so these exact numbers lock
in the current behaviour of the whole stack (routing, allocation,
adapters, energy accounting) for one fixed configuration per family.  A
change to any cycle-level mechanism will move them — which is the point:
behavioural changes must be deliberate, reviewed, and re-golded.

Note hetero_channel equals parallel_mesh here: at 2x2 chiplets Eq (5)
never prefers the cube (H_P <= H_S for every pair), so the hetero-channel
system degenerates to its parallel mesh, byte for byte.
"""

import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system

CONFIG = SimConfig(sim_cycles=1_500, warmup_cycles=200)
GRID = ChipletGrid(2, 2, 3, 3)

#: family -> (packets delivered, avg latency, avg energy pJ) at seed 42.
GOLDEN = {
    "parallel_mesh": (312, 19.884615384615383, 1383.3846153846155),
    "serial_torus": (309, 33.077669902912625, 2800.9216828478866),
    "hetero_phy_torus": (312, 23.647435897435898, 1793.9692307692287),
    "serial_hypercube": (308, 35.81818181818182, 2893.1324675324577),
    "hetero_channel": (312, 19.884615384615383, 1383.3846153846155),
}


@pytest.mark.parametrize("family", sorted(GOLDEN))
def test_golden_uniform_run(family):
    spec = build_system(family, GRID, CONFIG)
    result = run_synthetic(spec, "uniform", 0.1, seed=42)
    packets, latency, energy = GOLDEN[family]
    stats = result.stats
    assert stats.packets_delivered == packets
    assert stats.avg_latency == pytest.approx(latency, rel=1e-12)
    assert stats.avg_energy_pj == pytest.approx(energy, rel=1e-9)


def test_hetero_channel_degenerates_at_tiny_scale():
    """Document the Eq (5) degeneracy the golden table relies on."""
    from repro.routing.policies import HopCountSelector

    selector = HopCountSelector(GRID)
    for src in range(GRID.n_chiplets):
        for dst in range(GRID.n_chiplets):
            assert selector.select(src, dst) == "mesh"
