"""Unit and property tests for chiplet grid geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.grid import DIRECTIONS, OPPOSITE, ChipletGrid

grids = st.builds(
    ChipletGrid,
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(1, 5),
    st.integers(1, 5),
)


def test_sizes():
    grid = ChipletGrid(4, 3, 5, 2)
    assert grid.n_chiplets == 12
    assert grid.nodes_per_chiplet == 10
    assert grid.n_nodes == 120
    assert grid.width == 20
    assert grid.height == 6


def test_validation():
    with pytest.raises(ValueError):
        ChipletGrid(0, 1, 1, 1)


@given(grids, st.data())
def test_coords_roundtrip(grid, data):
    node = data.draw(st.integers(0, grid.n_nodes - 1))
    gx, gy = grid.coords(node)
    assert grid.node_at(gx, gy) == node


@given(grids, st.data())
def test_chiplet_coords_roundtrip(grid, data):
    chiplet = data.draw(st.integers(0, grid.n_chiplets - 1))
    cx, cy = grid.chiplet_coords(chiplet)
    assert grid.chiplet_at(cx, cy) == chiplet


@given(grids, st.data())
def test_local_coords_consistent(grid, data):
    node = data.draw(st.integers(0, grid.n_nodes - 1))
    chiplet = grid.chiplet_of(node)
    lx, ly = grid.local_coords(node)
    assert grid.node_of(chiplet, lx, ly) == node


def test_out_of_range_rejected():
    grid = ChipletGrid(2, 2, 2, 2)
    with pytest.raises(ValueError):
        grid.coords(16)
    with pytest.raises(ValueError):
        grid.node_at(4, 0)
    with pytest.raises(ValueError):
        grid.chiplet_coords(4)


def test_neighbor_directions():
    grid = ChipletGrid(2, 2, 2, 2)
    node = grid.node_at(1, 1)
    assert grid.neighbor(node, "E") == grid.node_at(2, 1)
    assert grid.neighbor(node, "W") == grid.node_at(0, 1)
    assert grid.neighbor(node, "N") == grid.node_at(1, 2)
    assert grid.neighbor(node, "S") == grid.node_at(1, 0)


def test_neighbor_at_edges_is_none():
    grid = ChipletGrid(2, 2, 2, 2)
    assert grid.neighbor(grid.node_at(0, 0), "W") is None
    assert grid.neighbor(grid.node_at(0, 0), "S") is None
    assert grid.neighbor(grid.node_at(3, 3), "E") is None
    assert grid.neighbor(grid.node_at(3, 3), "N") is None


@given(grids, st.data())
def test_neighbor_symmetry(grid, data):
    node = data.draw(st.integers(0, grid.n_nodes - 1))
    direction = data.draw(st.sampled_from(sorted(DIRECTIONS)))
    other = grid.neighbor(node, direction)
    if other is not None:
        assert grid.neighbor(other, OPPOSITE[direction]) == node


def test_boundary_crossing():
    grid = ChipletGrid(2, 1, 2, 2)
    inner = grid.node_at(0, 0)
    edge = grid.node_at(1, 0)
    assert not grid.crosses_chiplet_boundary(inner, "E")
    assert grid.crosses_chiplet_boundary(edge, "E")


def test_interface_and_core_nodes():
    grid = ChipletGrid(1, 1, 4, 4)
    # 4x4 chiplet: 12 edge nodes, 4 core nodes.
    interface = [n for n in range(16) if grid.is_interface_node(n)]
    core = grid.core_nodes()
    assert len(interface) == 12
    assert len(core) == 4
    assert set(interface) | set(core) == set(range(16))
    assert all(not grid.is_interface_node(n) for n in core)


def test_perimeter_enumeration_clockwise():
    grid = ChipletGrid(1, 1, 3, 3)
    ring = grid.perimeter_nodes(0)
    assert len(ring) == 8
    assert len(set(ring)) == 8
    assert ring[0] == grid.node_of(0, 0, 0)
    assert all(grid.is_interface_node(n) for n in ring)


def test_perimeter_identical_slots_across_chiplets():
    grid = ChipletGrid(2, 2, 3, 3)
    rings = [grid.perimeter_nodes(c) for c in range(4)]
    locals_ = [[grid.local_coords(n) for n in ring] for ring in rings]
    assert all(loc == locals_[0] for loc in locals_)


def test_perimeter_degenerate_shapes():
    assert len(ChipletGrid(1, 1, 1, 1).perimeter_nodes(0)) == 1
    assert len(ChipletGrid(1, 1, 1, 4).perimeter_nodes(0)) == 4
    assert len(ChipletGrid(1, 1, 4, 1).perimeter_nodes(0)) == 4


def test_chiplet_nodes_partition():
    grid = ChipletGrid(2, 2, 2, 3)
    seen = set()
    for chiplet in range(grid.n_chiplets):
        nodes = set(grid.chiplet_nodes(chiplet))
        assert len(nodes) == grid.nodes_per_chiplet
        assert all(grid.chiplet_of(n) == chiplet for n in nodes)
        seen |= nodes
    assert seen == set(range(grid.n_nodes))


def test_mesh_chiplet_distance():
    grid = ChipletGrid(4, 4, 2, 2)
    assert grid.mesh_chiplet_distance(0, 15) == 6
    assert grid.mesh_chiplet_distance(5, 5) == 0


def test_cube_distance():
    grid = ChipletGrid(4, 4, 2, 2)
    assert grid.cube_distance(0, 15) == 4
    assert grid.cube_distance(0, 0) == 0
    assert grid.cube_distance(0b1010, 0b0101) == 4
