"""Tests for the host-time observatory (``repro.telemetry.hostprof``).

Covers the ledger's accounting math with a fake clock, the engine-side
conservation invariant across every system family, the passive-observer
guarantee (attaching the ledger never changes simulated results), the
strided extrapolation, the cProfile→speedscope folding, and the
end-to-end acceptance story: an injected per-phase slowdown must show up
in ``repro compare`` under the guilty phase's name.
"""

import json
import time

import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.telemetry import TelemetryConfig
from repro.telemetry.compare import compare_bench, regressions
from repro.telemetry.hostprof import (
    CONSERVATION_TOLERANCE,
    PHASES,
    RESIDUAL_PHASE,
    HostprofError,
    HostTimeLedger,
    collapsed_stacks,
    fold_profile,
    load_speedscope,
    phase_of,
    render_host_table,
    speedscope_document,
    validate_speedscope,
    write_speedscope,
)
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system

from .test_bench_compare import make_bench_doc, make_case


def small_spec(family="hetero_phy_torus", cycles=800, warmup=100):
    grid = ChipletGrid(2, 2, 3, 3)
    config = SimConfig().replace(sim_cycles=cycles, warmup_cycles=warmup)
    return build_system(family, grid, config)


def run_with_ledger(spec, *, stride=1, seed=1, rate=0.1):
    result = run_synthetic(
        spec,
        "uniform",
        rate,
        seed=seed,
        telemetry=TelemetryConfig(
            host_time=True, host_stride=stride, epoch_metrics=False
        ),
    )
    return result, result.telemetry.hostprof


# -- ledger accounting (fake clock, exact math) ------------------------------
def test_ledger_rejects_bad_stride():
    with pytest.raises(ValueError, match="stride"):
        HostTimeLedger(stride=0)


def test_wants_follows_stride():
    ledger = HostTimeLedger(stride=4)
    assert [ledger.wants(c) for c in range(6)] == [
        True, False, False, False, True, False,
    ]
    assert all(HostTimeLedger(stride=1).wants(c) for c in range(5))


def test_summary_math_is_exact():
    ledger = HostTimeLedger(stride=4)
    for cycle in range(12):
        if ledger.wants(cycle):
            ledger.phases["inject"] += 70
            ledger.phases["sa_st"] += 30
            ledger.note_timed_cycle(100)
        else:
            ledger.note_plain_cycle()
    assert (ledger.timed_cycles, ledger.total_cycles) == (3, 12)
    assert ledger.loop_ns == 300 and ledger.attributed_ns == 300
    assert ledger.conservation == 1.0
    ledger.check_conservation()  # must not raise

    summary = ledger.summary()
    assert summary["ns_per_cycle"] == pytest.approx(100.0)
    # Stride 4 over 12 cycles: the estimate scales the 3 timed cycles x4.
    assert summary["est_loop_ns"] == pytest.approx(1200.0)
    inject = summary["phases"]["inject"]
    assert inject["ns_per_cycle"] == pytest.approx(70.0)
    assert inject["share"] == pytest.approx(0.7)
    assert inject["est_total_ns"] == pytest.approx(840.0)
    # Fully-attributed loop: the dispatch residual row is zero.
    assert summary["phases"][RESIDUAL_PHASE]["ns"] == 0.0

    record = ledger.record_summary()
    assert record["shares"]["sa_st"] == pytest.approx(0.3)
    assert set(record["ns_per_cycle"]) == {*PHASES, RESIDUAL_PHASE}


def test_conservation_check_is_two_sided():
    under = HostTimeLedger()
    under.phases["link"] += 500
    under.note_timed_cycle(1000)  # half the loop unattributed
    with pytest.raises(HostprofError, match="50.0%"):
        under.check_conservation()

    over = HostTimeLedger()
    over.phases["link"] += 2000  # double-counted phase
    over.note_timed_cycle(1000)
    with pytest.raises(HostprofError, match="conservation"):
        over.check_conservation()

    empty = HostTimeLedger()
    with pytest.raises(HostprofError, match="no timed cycles"):
        empty.check_conservation()
    # A ratio just inside the tolerance band passes.
    close = HostTimeLedger()
    close.phases["link"] += int(1000 * (1 - CONSERVATION_TOLERANCE / 2))
    close.note_timed_cycle(1000)
    close.check_conservation()


def test_render_host_table_lists_hot_phases():
    ledger = HostTimeLedger()
    ledger.phases["sa_st"] += 600
    ledger.phases["link"] += 400
    ledger.note_timed_cycle(1000)
    table = render_host_table(ledger.summary())
    assert "conservation 100.0%" in table
    assert table.index("sa_st") < table.index("link")  # hottest first
    assert "inject" not in table  # zero phases are dropped


# -- engine integration ------------------------------------------------------
def test_conservation_holds_for_every_family(family):
    _, ledger = run_with_ledger(small_spec(family, cycles=500))
    assert ledger.total_cycles >= 500
    assert ledger.timed_cycles == ledger.total_cycles  # stride 1
    ledger.check_conservation()
    # The lap-timer protocol attributes the timed loop exactly.
    assert ledger.conservation == pytest.approx(1.0, abs=1e-9)
    assert sum(ledger.phases.values()) == ledger.loop_ns


def test_ledger_is_a_passive_observer(family):
    def stats_fingerprint(result):
        return json.dumps(result.stats.summary(), sort_keys=True)

    baseline = run_synthetic(small_spec(family, cycles=600), "uniform", 0.1, seed=9)
    with_ledger, ledger1 = run_with_ledger(
        small_spec(family, cycles=600), stride=1, seed=9
    )
    strided, ledger3 = run_with_ledger(
        small_spec(family, cycles=600), stride=3, seed=9
    )
    assert stats_fingerprint(baseline) == stats_fingerprint(with_ledger)
    assert stats_fingerprint(baseline) == stats_fingerprint(strided)
    assert baseline.stats.packets_delivered == with_ledger.stats.packets_delivered
    assert ledger1.total_cycles == ledger3.total_cycles


def test_strided_sampling_times_every_nth_cycle():
    result, ledger = run_with_ledger(small_spec(cycles=900), stride=4)
    assert ledger.total_cycles >= 900
    # Cycles 0, 4, 8, ... are timed: one quarter of the loop (rounded up).
    expected = (ledger.total_cycles + 3) // 4
    assert ledger.timed_cycles == expected
    summary = ledger.summary()
    scale = ledger.total_cycles / ledger.timed_cycles
    assert summary["est_loop_ns"] == pytest.approx(ledger.loop_ns * scale)
    assert result.host_phases is not None
    assert result.host_phases["stride"] == 4


def test_router_work_lands_in_pipeline_phases():
    _, ledger = run_with_ledger(small_spec(cycles=800), rate=0.15)
    summary = ledger.summary()
    # Under load the switch/VC pipeline dominates; the residual dispatch
    # row must stay negligible (the laps leave nothing unattributed).
    assert summary["phases"]["sa_st"]["share"] > 0.1
    assert summary["phases"]["rc_va"]["share"] > 0.0
    assert summary["phases"][RESIDUAL_PHASE]["share"] < 0.01


# -- cProfile folding + speedscope -------------------------------------------
def test_phase_of_mapping():
    assert phase_of("src/repro/noc/router.py", "_stage_rc_va") == "rc_va"
    assert phase_of("src/repro/noc/router.py", "_send_flit") == "sa_st"
    assert phase_of("src/repro/core/phy.py", "_receive") == "phy_rx"
    assert phase_of("src/repro/core/phy.py", "_dispatch") == "phy_tx"
    assert phase_of("src/repro/noc/link.py", "step") == "link"
    assert phase_of("src/repro/traffic/injection.py", "step") == "inject"
    assert phase_of("src/repro/sim/engine.py", "run") == RESIDUAL_PHASE
    assert phase_of("~", "<built-in method time.sleep>") == "other"


def test_fold_profile_produces_phase_rooted_stacks():
    import cProfile

    from repro.sim.build import build_network
    from repro.sim.engine import Engine
    from repro.sim.stats import Stats
    from repro.traffic.injection import SyntheticWorkload
    from repro.traffic.patterns import make_pattern

    spec = small_spec(cycles=400)
    stats = Stats(measure_from=100)
    network = build_network(spec, stats)
    workload = SyntheticWorkload(
        make_pattern("uniform", spec.grid.n_nodes),
        spec.grid.n_nodes,
        0.1,
        spec.config.packet_length,
        until=400,
        seed=1,
    )
    profile = cProfile.Profile()
    profile.enable()
    Engine(network, workload, stats).run(400)
    profile.disable()

    rows = fold_profile(profile)
    assert rows and all(stack[0] == "engine" for stack, _ in rows)
    assert all(ns > 0 for _, ns in rows)
    assert rows == sorted(rows, key=lambda row: (-row[1], row[0]))
    phases_seen = {stack[1] for stack, _ in rows}
    assert "sa_st" in phases_seen and "link" in phases_seen

    doc = speedscope_document(rows, name="unit")
    validate_speedscope(doc)
    text = collapsed_stacks(rows)
    assert text.startswith("engine;")
    for line in text.splitlines():
        frames, weight = line.rsplit(" ", 1)
        assert frames.count(";") == 2 and int(weight) > 0


def test_speedscope_roundtrip_and_validation(tmp_path):
    rows = [
        (("engine", "sa_st", "repro/noc/router.py:_send_flit"), 1_500_000),
        (("engine", "link", "repro/noc/link.py:step"), 500_000),
    ]
    doc = speedscope_document(rows, name="roundtrip")
    path = write_speedscope(doc, tmp_path / "deep" / "profile.speedscope.json")
    loaded = load_speedscope(path)
    assert loaded == doc
    assert loaded["profiles"][0]["endValue"] == 2_000_000

    with pytest.raises(ValueError, match="frames"):
        validate_speedscope({"shared": {"frames": "nope"}, "profiles": []})
    bad_type = speedscope_document(rows)
    bad_type["profiles"][0]["type"] = "evented"
    with pytest.raises(ValueError, match="unsupported profile type"):
        validate_speedscope(bad_type)
    mismatch = speedscope_document(rows)
    mismatch["profiles"][0]["weights"] = [1]
    with pytest.raises(ValueError, match="length mismatch"):
        validate_speedscope(mismatch)
    out_of_range = speedscope_document(rows)
    out_of_range["profiles"][0]["samples"][0] = [999]
    with pytest.raises(ValueError, match="out of range"):
        validate_speedscope(out_of_range)
    short_end = speedscope_document(rows)
    short_end["profiles"][0]["endValue"] = 5
    with pytest.raises(ValueError, match="endValue"):
        validate_speedscope(short_end)


# -- acceptance: compare names the guilty phase ------------------------------
def host_case(host, **kwargs):
    case = make_case(**kwargs)
    case["host"] = host
    return case


def test_injected_slowdown_is_attributed_to_the_guilty_phase(monkeypatch):
    from repro.noc.router import Router

    _, clean = run_with_ledger(small_spec(cycles=400), seed=5)

    original = Router._stage_rc_va

    def slow_rc_va(self, now):
        time.sleep(20e-6)  # the "time.sleep in VA" of the acceptance test
        return original(self, now)

    monkeypatch.setattr(Router, "_stage_rc_va", slow_rc_va)
    _, slowed = run_with_ledger(small_spec(cycles=400), seed=5)

    npc_clean = clean.record_summary()["ns_per_cycle"]
    npc_slow = slowed.record_summary()["ns_per_cycle"]
    assert npc_slow["rc_va"] > 3 * npc_clean["rc_va"]
    # Attribution stays conserved even with the sleep inside the lap.
    slowed.check_conservation()

    before = make_bench_doc(fig11=host_case(clean.record_summary()))
    after = make_bench_doc(fig11=host_case(slowed.record_summary()))
    verdicts = compare_bench(before, after)
    flagged = {v.metric for v in regressions(verdicts)}
    assert "host.rc_va" in flagged
    # Gating isolates the phase verdicts from unrelated noise.
    gated = regressions(verdicts, gate=["host.rc_va"])
    assert [v.metric for v in gated] == ["host.rc_va"]
    assert regressions(verdicts, gate=["events"]) == []


def test_compare_tolerates_missing_host_blocks():
    old = make_bench_doc(fig11=make_case())  # pre-hostprof bench file
    new = make_bench_doc(
        fig11=host_case(
            {
                "stride": 1,
                "timed_cycles": 100,
                "total_cycles": 100,
                "conservation": 1.0,
                "ns_per_cycle": {"sa_st": 5000.0, "link": 1000.0},
                "shares": {"sa_st": 0.8, "link": 0.2},
            }
        )
    )
    verdicts = compare_bench(old, new)
    host_verdicts = [v for v in verdicts if v.metric.startswith("host.")]
    assert host_verdicts and all(v.verdict == "n/a" for v in host_verdicts)
    assert regressions(verdicts, gate=["host"]) == []


def test_compare_skips_sub_noise_phases():
    base = {
        "stride": 1,
        "timed_cycles": 100,
        "total_cycles": 100,
        "conservation": 1.0,
        "ns_per_cycle": {"sa_st": 10_000.0, "stats": 50.0},
        "shares": {"sa_st": 0.995, "stats": 0.005},
    }
    tripled_tiny = dict(base, ns_per_cycle={"sa_st": 10_000.0, "stats": 150.0})
    verdicts = compare_bench(
        make_bench_doc(fig11=host_case(base)),
        make_bench_doc(fig11=host_case(tripled_tiny)),
    )
    # A 3x jump in a 0.5%-share phase is absolute noise, not a regression.
    assert not any(v.metric == "host.stats" for v in verdicts)
    assert not regressions(verdicts, gate=["host"])
