"""Tests for the HPC (DUMPI-substitute) trace generators."""

import pytest

from repro.topology.grid import ChipletGrid
from repro.traffic.hpc import (
    embed_ranks,
    generate_cns_trace,
    generate_moc_trace,
    packetize,
)

GRID = ChipletGrid(4, 4, 4, 4)


def test_packetize_splits_large_messages():
    records = packetize(100, 3, 7, n_bytes=1000, max_packet_flits=16)
    # 1000 bytes = 125 flits -> 7x16 + 13.
    assert len(records) == 8
    assert sum(r.length for r in records) == 125
    assert all(r.length <= 16 for r in records)
    # packets of one message injected on consecutive cycles
    assert [r.cycle for r in records] == list(range(100, 108))


def test_packetize_drops_self_messages():
    assert packetize(0, 4, 4, 64) == []


def test_packetize_minimum_one_flit():
    records = packetize(0, 0, 1, n_bytes=1)
    assert len(records) == 1
    assert records[0].length == 1


def test_cns_structure_neighbour_dominated():
    trace = generate_cns_trace(n_ranks=64, iterations=3)
    assert len(trace) > 0
    # rank grid for 64 ranks is 4x4x4: halo partners differ by 1, 4 or 16.
    strides = {abs(r.dst - r.src) for r in trace.records if r.msg_class == "bulk"}
    # allreduce adds power-of-two partners, but halo strides dominate.
    from collections import Counter

    counts = Counter(abs(r.dst - r.src) for r in trace.records)
    top = {s for s, _ in counts.most_common(3)}
    assert top <= {1, 4, 16}


def test_moc_structure_long_range():
    trace = generate_moc_trace(n_ranks=64, iterations=2)
    distances = [abs(r.dst - r.src) for r in trace.records]
    assert max(distances) > 16  # long-range exchange present


def test_rank_validation():
    with pytest.raises(ValueError):
        generate_cns_trace(n_ranks=1)
    with pytest.raises(ValueError):
        generate_moc_trace(n_ranks=1)


def test_traces_deterministic():
    a = generate_cns_trace(64, 2, seed=5)
    b = generate_cns_trace(64, 2, seed=5)
    assert a.records == b.records


def test_embed_ranks_all_nodes():
    trace = generate_cns_trace(64, 2)
    embedded = embed_ranks(trace, GRID)
    assert embedded.records
    for record in embedded.records:
        assert 0 <= record.src < GRID.n_nodes
        assert 0 <= record.dst < GRID.n_nodes
        assert record.src != record.dst


def test_embed_ranks_core_only():
    trace = generate_moc_trace(16, 2)
    embedded = embed_ranks(trace, GRID, core_only=True)
    core = set(GRID.core_nodes())
    for record in embedded.records:
        assert record.src in core
        assert record.dst in core


def test_embed_spreads_over_distinct_nodes():
    trace = generate_cns_trace(64, 1)
    embedded = embed_ranks(trace, GRID)
    endpoints = {r.src for r in embedded.records} | {r.dst for r in embedded.records}
    assert len(endpoints) >= 32


def test_cns_load_in_sane_range():
    """The generated offered load must be below network capacity."""
    trace = embed_ranks(generate_cns_trace(256, 5), ChipletGrid(4, 4, 4, 4))
    load = trace.offered_load(256)
    assert 0.01 < load < 1.0


def test_moc_load_in_sane_range():
    trace = embed_ranks(generate_moc_trace(256, 3), ChipletGrid(4, 4, 4, 4))
    load = trace.offered_load(256)
    assert 0.01 < load < 1.0
