"""Tests for the synthetic injection process."""

import numpy as np
import pytest

from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import UniformHotspot, UniformRandom


def total_flits(workload, cycles):
    total = 0
    for now in range(cycles):
        for packet in workload.step(now):
            total += packet.length
    return total


def test_rate_is_respected_on_average():
    n, rate, cycles = 64, 0.2, 4000
    workload = SyntheticWorkload(UniformRandom(n), n, rate, packet_length=16, seed=1)
    flits = total_flits(workload, cycles)
    measured = flits / (n * cycles)
    assert measured == pytest.approx(rate, rel=0.1)


def test_zero_rate_injects_nothing():
    workload = SyntheticWorkload(UniformRandom(8), 8, 0.0, packet_length=4)
    assert total_flits(workload, 100) == 0


def test_until_limits_generation():
    workload = SyntheticWorkload(
        UniformRandom(16), 16, 0.5, packet_length=4, until=50, seed=2
    )
    assert not workload.done(49)
    flits_before = total_flits(workload, 50)
    assert flits_before > 0
    assert workload.done(50)
    assert list(workload.step(60)) == []


def test_packets_have_valid_endpoints():
    n = 32
    workload = SyntheticWorkload(UniformRandom(n), n, 0.3, packet_length=8, seed=3)
    for now in range(50):
        for packet in workload.step(now):
            assert 0 <= packet.src < n
            assert 0 <= packet.dst < n
            assert packet.src != packet.dst
            assert packet.length == 8
            assert packet.create_cycle == now


def test_hotspot_sources_only():
    n = 100
    pattern = UniformHotspot(n, fraction=0.1, seed=5)
    allowed = set(pattern.sources())
    workload = SyntheticWorkload(pattern, n, 0.5, packet_length=2, seed=6)
    seen = set()
    for now in range(200):
        for packet in workload.step(now):
            seen.add(packet.src)
    assert seen
    assert seen <= allowed


def test_rate_averaged_over_hotspot_sources():
    """The offered rate is per *injecting* node, not per network node."""
    n, rate, cycles = 100, 0.4, 3000
    pattern = UniformHotspot(n, fraction=0.1, seed=7)
    workload = SyntheticWorkload(pattern, n, rate, packet_length=4, seed=8)
    flits = total_flits(workload, cycles)
    measured = flits / (len(pattern.sources()) * cycles)
    assert measured == pytest.approx(rate, rel=0.15)


def test_validation():
    with pytest.raises(ValueError):
        SyntheticWorkload(UniformRandom(4), 4, -0.1, packet_length=4)
    with pytest.raises(ValueError):
        SyntheticWorkload(UniformRandom(4), 4, 0.1, packet_length=0)


def test_deterministic_given_seed():
    def collect(seed):
        w = SyntheticWorkload(UniformRandom(16), 16, 0.3, packet_length=4, seed=seed)
        return [(p.src, p.dst, p.create_cycle) for now in range(100) for p in w.step(now)]

    assert collect(9) == collect(9)
    assert collect(9) != collect(10)
