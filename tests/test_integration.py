"""End-to-end integration invariants across all system families.

These run real traffic through every built system and check conservation
properties: every measured packet is delivered exactly once and intact,
energy totals are consistent, and runs are deterministic given a seed.
"""

import math

import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic, run_trace
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.trace import Trace, TraceRecord

CONFIG = SimConfig(sim_cycles=1_500, warmup_cycles=200)
GRID = ChipletGrid(2, 2, 3, 3)


@pytest.fixture(params=["parallel_mesh", "serial_torus", "hetero_phy_torus",
                        "serial_hypercube", "hetero_channel"])
def spec(request):
    return build_system(request.param, GRID, CONFIG)


def test_uniform_traffic_delivers(spec):
    result = run_synthetic(spec, "uniform", 0.1, seed=3)
    stats = result.stats
    assert stats.packets_delivered > 50
    assert stats.delivered_fraction > 0.9
    assert stats.avg_latency > 0
    assert stats.avg_hops >= 1


def test_trace_replay_delivers_everything(spec):
    records = []
    rng_nodes = [(1, 20), (5, 30), (12, 2), (30, 7), (17, 33), (8, 35)]
    for t in range(0, 300, 10):
        src, dst = rng_nodes[(t // 10) % len(rng_nodes)]
        records.append(TraceRecord(t, src, dst, 9))
    trace = Trace(records, name="it")
    result = run_trace(spec, trace)
    assert result.stats.packets_delivered == len(records)
    assert result.stats.delivered_fraction == pytest.approx(1.0)


def test_energy_totals_consistent(spec):
    """Per-packet energy sums match the link-level energy counters."""
    result = run_synthetic(spec, "uniform", 0.05, seed=9)
    stats = result.stats
    link_total = sum(stats.link_energy_pj.values())
    packet_total = stats.energy_onchip_pj + stats.energy_interface_pj
    # Link counters include warm-up and in-flight packets, so they bound
    # the measured per-packet total from above.
    assert packet_total <= link_total + 1e-6
    assert packet_total > 0


def test_determinism_same_seed(spec):
    a = run_synthetic(spec, "uniform", 0.1, seed=11)
    b = run_synthetic(spec, "uniform", 0.1, seed=11)
    assert a.stats.packets_delivered == b.stats.packets_delivered
    assert a.stats.avg_latency == b.stats.avg_latency
    assert a.stats.energy_interface_pj == b.stats.energy_interface_pj


def test_different_seeds_differ(spec):
    a = run_synthetic(spec, "uniform", 0.1, seed=11)
    b = run_synthetic(spec, "uniform", 0.1, seed=12)
    assert a.stats.avg_latency != b.stats.avg_latency


@pytest.mark.parametrize("pattern", ["uniform", "hotspot", "shuffle", "complement", "transpose", "reverse"])
def test_all_patterns_run_on_hetero_phy(pattern):
    spec = build_system("hetero_phy_torus", GRID, CONFIG)
    result = run_synthetic(spec, pattern, 0.1, seed=5)
    assert result.stats.packets_delivered > 10
    assert result.stats.delivered_fraction > 0.8


def test_policies_change_behaviour():
    spec = build_system("hetero_phy_torus", GRID, CONFIG)
    balanced = run_synthetic(spec, "uniform", 0.35, policy="balanced", seed=4)
    efficient = run_synthetic(spec, "uniform", 0.35, policy="energy_efficient", seed=4)
    # Energy-efficient dispatch never uses the serial PHY.
    assert efficient.phy_split[1] == 0
    assert balanced.phy_split[0] > 0
    # and consequently uses less interface energy per packet.
    if balanced.phy_split[1] > 0:
        assert (
            efficient.stats.avg_energy_interface_pj
            < balanced.stats.avg_energy_interface_pj
        )


def test_halved_config_reduces_throughput():
    spec_full = build_system("hetero_phy_torus", GRID, CONFIG)
    spec_half = build_system("hetero_phy_torus", GRID, CONFIG.halved())
    full = run_synthetic(spec_full, "uniform", 0.4, seed=6)
    half = run_synthetic(spec_half, "uniform", 0.4, seed=6)
    assert half.stats.avg_latency >= full.stats.avg_latency


def test_hetero_channel_beats_hypercube_on_uniform():
    """The headline hetero-channel result at a 16-chiplet scale."""
    grid = ChipletGrid(4, 4, 2, 2)
    config = SimConfig(sim_cycles=1_500, warmup_cycles=200)
    cube = run_synthetic(build_system("serial_hypercube", grid, config), "uniform", 0.1, seed=2)
    hetero = run_synthetic(build_system("hetero_channel", grid, config), "uniform", 0.1, seed=2)
    assert hetero.stats.avg_latency < cube.stats.avg_latency


def test_hetero_phy_beats_serial_torus_on_uniform():
    grid = ChipletGrid(2, 2, 4, 4)
    config = SimConfig(sim_cycles=1_500, warmup_cycles=200)
    serial = run_synthetic(build_system("serial_torus", grid, config), "uniform", 0.1, seed=2)
    hetero = run_synthetic(build_system("hetero_phy_torus", grid, config), "uniform", 0.1, seed=2)
    assert hetero.stats.avg_latency < serial.stats.avg_latency
