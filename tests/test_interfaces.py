"""Tests for the Table 1 interface records."""

import pytest

from repro.core.interfaces import (
    AIB,
    BOW,
    SERDES,
    TABLE1,
    UCIE_ADVANCED,
    UCIE_STANDARD,
    lookup,
)


def test_table1_values():
    assert SERDES.data_rate_gbps == 112.0
    assert SERDES.power_pj_per_bit == 2.0
    assert SERDES.reach_mm == 50.0
    assert AIB.data_rate_gbps == 6.4
    assert AIB.power_pj_per_bit == 0.5
    assert AIB.reach_mm == 10.0
    assert BOW.data_rate_gbps == 32.0
    assert UCIE_STANDARD.reach_mm == 25.0
    assert UCIE_ADVANCED.reach_mm == 2.0


def test_categories():
    assert SERDES.category == "serial"
    assert AIB.category == "parallel"
    assert BOW.category == "compromised"


def test_total_latency_includes_digital_terms():
    assert SERDES.total_latency_ns == pytest.approx(7.5)
    assert AIB.total_latency_ns == pytest.approx(3.5)


def test_lookup_case_insensitive():
    assert lookup("aib") is AIB
    assert lookup("SerDes") is SERDES
    with pytest.raises(KeyError):
        lookup("nvlink")


def test_to_phy_conversion():
    # 16 SerDes lanes at 1 GHz: 112*16/1 = 1792 bits/cycle = 28 flits.
    phy = SERDES.to_phy(clock_ghz=1.0, lanes=16)
    assert phy.bandwidth == 28
    assert phy.delay == 8  # ceil(7.5 ns at 1 GHz)
    assert phy.energy_pj_per_bit == 2.0


def test_to_phy_minimums():
    phy = AIB.to_phy(clock_ghz=2.0, lanes=1)  # 3.2 bits/cycle < 1 flit
    assert phy.bandwidth == 1
    with pytest.raises(ValueError):
        AIB.to_phy(0, 4)


def test_serdes_tradeoff_against_aib():
    """The core Table 1 story: serial = fast+far+hot, parallel = slow+near+cool."""
    assert SERDES.data_rate_gbps > AIB.data_rate_gbps
    assert SERDES.reach_mm > AIB.reach_mm
    assert SERDES.power_pj_per_bit > AIB.power_pj_per_bit
    assert SERDES.total_latency_ns > AIB.total_latency_ns


def test_table1_is_complete():
    names = {spec.name for spec in TABLE1}
    assert names == {"SerDes", "AIB", "BoW", "UCIe-S", "UCIe-A"}
