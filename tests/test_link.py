"""Tests for pipelined links: timing, bandwidth, credits, energy."""

import pytest

from repro.noc.channel import ChannelKind, ChannelSpec, PhyParams
from repro.noc.flit import FLIT_BITS, Packet
from repro.noc.link import PipelinedLink

from .helpers import build_chain, run_cycles


def test_pipelined_link_rejects_hetero_spec():
    spec = ChannelSpec(
        0,
        1,
        ChannelKind.HETERO_PHY,
        PhyParams(2, 5, 1.0),
        serial_phy=PhyParams(4, 20, 2.4),
    )
    with pytest.raises(ValueError):
        PipelinedLink(spec)


def test_single_flit_crosses_onchip_link():
    network, stats = build_chain(2, bandwidth=2, delay=1)
    packet = Packet(0, 1, 1, 0)
    network.inject(packet)
    run_cycles(network, 10)
    assert packet.arrive_cycle is not None
    # RC/VA at 0, switch at 1, wire 1 cycle, downstream RC/VA at 2, eject 3.
    assert packet.arrive_cycle == 3


def test_link_delay_adds_to_latency():
    results = {}
    for delay in (1, 5, 20):
        network, _ = build_chain(2, ChannelKind.SERIAL if delay == 20 else ChannelKind.PARALLEL, delay=delay, bandwidth=2)
        packet = Packet(0, 1, 1, 0)
        network.inject(packet)
        run_cycles(network, 60)
        results[delay] = packet.arrive_cycle
    assert results[5] - results[1] == 4
    assert results[20] - results[1] == 19


def test_bandwidth_limits_flits_per_cycle():
    """A 16-flit packet over a bandwidth-2 link drains 2 flits/cycle."""
    network, _ = build_chain(2, bandwidth=2, delay=1)
    packet = Packet(0, 1, 16, 0)
    network.inject(packet)
    run_cycles(network, 30)
    # sends start at 1, 2 flits/cycle: the tail crosses at cycle 8 and
    # arrives (delay 1) at cycle 9, ejected the same cycle.
    assert packet.arrive_cycle == 9


def test_wider_link_drains_faster():
    network, _ = build_chain(2, bandwidth=4, delay=1)
    packet = Packet(0, 1, 16, 0)
    network.inject(packet)
    run_cycles(network, 30)
    # sends start at 1, 4 flits/cycle: the tail arrives at cycle 5, but the
    # head's RC/VA cycle delays ejection one cycle behind the 4-flit/cycle
    # arrival stream, so the tail leaves the ejection queue at cycle 6.
    assert packet.arrive_cycle == 6


def test_energy_accounting_per_flit():
    network, stats = build_chain(2, bandwidth=2, delay=1)
    packet = Packet(0, 1, 4, 0)
    network.inject(packet)
    run_cycles(network, 20)
    # on-chip chain_spec energy is 1.0 pJ/bit.
    assert packet.energy_onchip_pj == pytest.approx(4 * FLIT_BITS * 1.0)
    assert packet.energy_interface_pj == 0.0
    assert stats.link_flits[ChannelKind.ONCHIP] == 4


def test_hop_counted_once_per_packet():
    network, _ = build_chain(3, bandwidth=2, delay=1)
    packet = Packet(0, 2, 8, 0)
    network.inject(packet)
    run_cycles(network, 40)
    assert packet.hops_onchip == 2
    assert packet.hops_interface == 0


def test_interface_hop_classified_separately():
    network, _ = build_chain(2, ChannelKind.PARALLEL, bandwidth=2, delay=5)
    packet = Packet(0, 1, 2, 0)
    network.inject(packet)
    run_cycles(network, 30)
    assert packet.hops_interface == 1
    assert packet.hops_onchip == 0
    assert packet.energy_interface_pj > 0


def test_credits_throttle_when_downstream_blocked():
    """With a tiny downstream buffer, the sender cannot overrun it.

    Node 1's input buffer has 4 slots; since node 1 forwards to node 2,
    flits drain, but in-flight occupancy never exceeds buffer + slack.
    """
    network, _ = build_chain(3, bandwidth=2, delay=1, buffer_depth=4)
    # VCT needs whole-packet credit; use packets of length <= 4.
    for i in range(4):
        network.inject(Packet(0, 2, 4, 0))
    max_occupancy = 0
    for now in range(60):
        network.stats.now = now
        network.step(now)
        occupancy = network.routers[1].buffered_flits()
        max_occupancy = max(max_occupancy, occupancy)
    assert max_occupancy <= 4 * 2  # per-VC depth x 2 VCs
    assert network.buffered_flits() == 0


def test_occupancy_tracks_in_flight():
    network, _ = build_chain(2, ChannelKind.PARALLEL, bandwidth=2, delay=5)
    link = network.links[0]
    packet = Packet(0, 1, 8, 0)
    network.inject(packet)
    peak = 0
    for now in range(30):
        network.stats.now = now
        network.step(now)
        peak = max(peak, link.occupancy)
    assert peak > 0
    assert link.occupancy == 0
