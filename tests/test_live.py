"""Tests for the live telemetry feed (``repro.telemetry.live``)."""

import json

import pytest

from repro.noc.flit import Packet
from repro.telemetry import (
    LIVE_SCHEMA_VERSION,
    LiveFeed,
    LiveFeedError,
    TelemetryConfig,
    feed_status,
    live_feed_path,
    read_feed,
    validate_live_event,
)
from repro.telemetry.forensics import HealthMonitor, HealthThresholds
from repro.telemetry.live import ENVELOPE_FIELDS, EVENT_KINDS
from repro.telemetry.metrics import EpochMetrics

from .helpers import build_chain, run_cycles


def make_feed(tmp_path, network, **kwargs):
    kwargs.setdefault("run_id", "feedtest00001")
    kwargs.setdefault("directory", tmp_path / "live")
    return LiveFeed(network, **kwargs)


# -- schema validation --------------------------------------------------------
def test_validate_rejects_non_object():
    with pytest.raises(LiveFeedError, match="not a JSON object"):
        validate_live_event(["not", "a", "dict"])


def test_validate_rejects_foreign_schema_version():
    with pytest.raises(LiveFeedError, match="not supported"):
        validate_live_event({"schema_version": LIVE_SCHEMA_VERSION + 1})


def test_validate_rejects_missing_envelope_field():
    event = dict.fromkeys(ENVELOPE_FIELDS, 0)
    event["schema_version"] = LIVE_SCHEMA_VERSION
    del event["seq"]
    with pytest.raises(LiveFeedError, match="envelope field 'seq'"):
        validate_live_event(event)


def test_validate_rejects_unknown_kind():
    event = dict.fromkeys(ENVELOPE_FIELDS, 0)
    event["schema_version"] = LIVE_SCHEMA_VERSION
    event["kind"] = "surprise"
    with pytest.raises(LiveFeedError, match="unknown live event kind"):
        validate_live_event(event)


def test_validate_rejects_missing_payload_field():
    event = dict.fromkeys(ENVELOPE_FIELDS, 0)
    event["schema_version"] = LIVE_SCHEMA_VERSION
    event["kind"] = "failure"
    event.update(cycle=5, reason="deadlock", error="boom")  # no "bundle"
    with pytest.raises(LiveFeedError, match="missing fields: bundle"):
        validate_live_event(event)


# -- write -> validate -> load round-trip -------------------------------------
def test_feed_roundtrip_write_validate_load(tmp_path):
    network, stats = build_chain(3)
    feed = make_feed(tmp_path, network, every=10, total_cycles=40)
    feed.start({"system": "chain", "workload": "unit"})
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 40)
    path = feed.finish(40)
    assert path == live_feed_path(tmp_path / "live", "feedtest00001")

    # Every line is strict JSON and passes the schema check.
    lines = path.read_text().splitlines()
    for line in lines:
        validate_live_event(json.loads(line))
    events = read_feed(path)  # strict
    assert len(events) == len(lines)
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert all(e["schema_version"] == LIVE_SCHEMA_VERSION for e in events)
    assert all(e["run_id"] == "feedtest00001" for e in events)

    kinds = [e["kind"] for e in events]
    assert kinds[0] == "start"
    assert kinds[-1] == "finish"
    assert kinds.count("heartbeat") == 4  # cycles 10, 20, 30, 40
    assert events[0]["meta"]["total_cycles"] == 40  # injected by start()
    assert events[-1]["stats"]["packets_delivered"] == stats.packets_delivered
    assert feed.events_written == len(events)


def test_read_feed_strict_raises_lenient_skips(tmp_path):
    network, _stats = build_chain(2)
    feed = make_feed(tmp_path, network, every=10)
    feed.start({"system": "chain"})
    path = feed.finish(0)
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"truncated mid-line\n')
    with pytest.raises(LiveFeedError, match="unreadable live event"):
        read_feed(path)
    assert len(read_feed(path, strict=False)) == 2  # start + finish survive


def test_read_feed_missing_file_is_empty(tmp_path):
    assert read_feed(tmp_path / "never-written.jsonl") == []


def test_heartbeats_carry_progress_and_non_finite_floats_become_null(tmp_path):
    network, _stats = build_chain(2)
    feed = make_feed(tmp_path, network, every=10, total_cycles=20)
    feed.start({"system": "chain"})
    run_cycles(network, 20)  # idle: delivered_fraction is 0/0 -> nan
    path = feed.finish(20)
    beats = [e for e in read_feed(path) if e["kind"] == "heartbeat"]
    assert [b["cycle"] for b in beats] == [10, 20]
    assert beats[-1]["fraction"] == 1.0
    assert beats[-1]["delivered_fraction"] is None  # nan sanitised to null
    assert all(b["cps"] is None or b["cps"] > 0 for b in beats)


# -- epoch / health draining ---------------------------------------------------
def test_heartbeat_drains_epochs_and_health_without_duplicates(tmp_path):
    network, _stats = build_chain(3)
    metrics = EpochMetrics(network, epoch_length=10)
    monitor = HealthMonitor(network, every=10)
    feed = make_feed(
        tmp_path, network, every=20, total_cycles=60,
        metrics=metrics, monitor=monitor,
    )
    feed.start({"system": "chain"})
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 60)
    metrics.finish(60)
    path = feed.finish(60)
    events = read_feed(path)
    epochs = [e["epoch"] for e in events if e["kind"] == "epoch"]
    probes = [e["probe"] for e in events if e["kind"] == "health"]
    # Every closed epoch and probe forwarded exactly once, in order.
    assert [e["index"] for e in epochs] == [s.index for s in metrics.samples]
    assert [p["cycle"] for p in probes] == [p.cycle for p in monitor.probes]
    # Draining happens at heartbeats: epochs interleave with the beats.
    kinds = [e["kind"] for e in events]
    assert kinds.index("epoch") > kinds.index("heartbeat")


def test_anomalies_are_streamed(tmp_path):
    network, _stats = build_chain(2)
    monitor = HealthMonitor(
        network, every=10,
        thresholds=HealthThresholds(max_packet_age=5),
    )
    feed = make_feed(tmp_path, network, every=10, monitor=monitor)
    feed.start({"system": "chain"})
    network.inject(Packet(0, 1, 64, 0))  # long packet: ages past 5 cycles
    run_cycles(network, 30)
    path = feed.finish(30)
    events = read_feed(path)
    anomalies = [e for e in events if e["kind"] == "anomaly"]
    assert anomalies, "expected the aged packet to raise an anomaly"
    assert anomalies[0]["anomaly_kind"] == "packet-age"
    assert "cycles old" in anomalies[0]["detail"]
    status = feed_status(events)
    assert "packet-age" in [a["kind"] for a in status["anomalies"]]


# -- lifecycle ----------------------------------------------------------------
def test_feed_validates_interval(tmp_path):
    network, _stats = build_chain(2)
    with pytest.raises(ValueError, match="every"):
        make_feed(tmp_path, network, every=0)


def test_finish_is_idempotent_and_detaches(tmp_path):
    network, _stats = build_chain(2)
    feed = make_feed(tmp_path, network, every=10)
    feed.start({"system": "chain"})
    path = feed.finish(10)
    count = len(read_feed(path))
    assert feed.finish(10) == path  # second call: no-op
    assert len(read_feed(path)) == count
    assert network.telemetry.cycle_end is None  # bus back to the fast path
    feed.close()  # close after finish: also a no-op


def test_failure_event_closes_feed_and_blocks_finish(tmp_path):
    network, _stats = build_chain(2)
    feed = make_feed(tmp_path, network, every=10, total_cycles=100)
    feed.start({"system": "chain"})
    run_cycles(network, 10)
    path = feed.fail("deadlock", 17, error="Boom: wedged", bundle="B.json")
    events = read_feed(path)
    assert events[-1]["kind"] == "failure"
    assert events[-1]["reason"] == "deadlock"
    assert events[-1]["bundle"] == "B.json"
    feed.finish(17)  # run already failed: must not append a finish
    assert [e["kind"] for e in read_feed(path)] == [e["kind"] for e in events]
    assert network.telemetry.cycle_end is None


# -- feed_status folding ------------------------------------------------------
def test_feed_status_states(tmp_path):
    network, _stats = build_chain(2)
    feed = make_feed(tmp_path, network, every=10, total_cycles=40)
    feed.start({"system": "chain", "workload": "unit"})
    run_cycles(network, 20)

    running = feed_status(read_feed(feed.path), now=0.0)
    assert running["state"] == "running"
    assert running["run_id"] == "feedtest00001"
    assert running["meta"]["system"] == "chain"
    assert running["cycle"] == 20
    assert running["total_cycles"] == 40
    assert running["fraction"] == pytest.approx(0.5)

    run_cycles(network, 20, start=20)
    feed.finish(40)
    finished = feed_status(read_feed(feed.path))
    assert finished["state"] == "finished"
    assert finished["eta_seconds"] == 0.0
    assert finished["fraction"] == 1.0
    assert finished["wall_seconds"] is not None
    assert finished["age_seconds"] >= 0.0


def test_feed_status_empty_feed_is_pending():
    status = feed_status([])
    assert status["state"] == "pending"
    assert status["cycle"] == 0
    assert status["age_seconds"] is None


# -- end-to-end through the session -------------------------------------------
def test_run_synthetic_live_session(tmp_path, small_grid):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import run_synthetic
    from repro.topology.system import build_system

    spec = build_system("hetero_phy_torus", small_grid, SimConfig(
        sim_cycles=2_000, warmup_cycles=200
    ))
    config = TelemetryConfig(
        live=True,
        live_dir=tmp_path / "live",
        live_every=500,
        run_id="sessiontest01",
        epoch_length=500,
        health=True,
        health_every=500,
    )
    result = run_synthetic(spec, "uniform", 0.05, seed=7, telemetry=config)
    session = result.telemetry
    assert session is not None and session.live is not None
    path = tmp_path / "live" / "sessiontest01.jsonl"
    assert session.live.path == path
    assert path in session.written
    events = read_feed(path)
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "start" and kinds[-1] == "finish"
    assert "heartbeat" in kinds and "epoch" in kinds and "health" in kinds
    meta = events[0]["meta"]
    assert meta["system"] == spec.name
    assert meta["workload"] == "uniform@0.05"
    assert meta["seed"] == 7
    assert meta["total_cycles"] == 2_000
    assert len(meta["config_hash"]) == 12
    status = feed_status(events)
    assert status["state"] == "finished"
    assert status["stats"]["packets_delivered"] == result.stats.packets_delivered
    # Finalize detached the feed with everything else: fast path restored.
    assert session.network.telemetry.cycle_end is None


def test_engine_failure_streams_failure_event(tmp_path):
    """A wedged engine run ends the feed with a bundle-pointing failure."""
    from repro.sim.build import build_network
    from repro.sim.config import SimConfig
    from repro.sim.engine import Engine
    from repro.sim.stats import DeadlockError, Stats
    from repro.telemetry.forensics import ForensicsConfig, ForensicsSession
    from repro.topology.grid import ChipletGrid
    from repro.topology.system import build_system
    from repro.traffic import SyntheticWorkload
    from repro.traffic.patterns import make_pattern

    from .test_forensics import ring_routing

    grid = ChipletGrid(2, 1, 2, 2)
    config = SimConfig(sim_cycles=4_000, warmup_cycles=0)
    spec = build_system("serial_torus", grid, config)
    stats = Stats()
    network = build_network(spec, stats, routing=ring_routing)
    feed = make_feed(tmp_path, network, every=100, total_cycles=4_000)
    feed.start({"system": spec.name, "workload": "wedge"})
    forensics = ForensicsSession(
        network, ForensicsConfig(bundle_dir=tmp_path / "bundles")
    )
    pattern = make_pattern("uniform", grid.n_nodes)
    workload = SyntheticWorkload(
        pattern, grid.n_nodes, 1.0, config.packet_length, seed=3
    )
    engine = Engine(network, workload, stats, deadlock_threshold=300)
    engine.forensics = forensics
    engine.livefeed = feed
    with pytest.raises(DeadlockError):
        engine.run(4_000)
    events = read_feed(feed.path)
    failure = events[-1]
    assert failure["kind"] == "failure"
    assert failure["reason"] == "deadlock"
    assert failure["bundle"] and "BUNDLE_deadlock" in failure["bundle"]
    assert "DeadlockError" in failure["error"]
    status = feed_status(events)
    assert status["state"] == "failed"
    assert status["bundle"] == failure["bundle"]


def test_event_kinds_registry_matches_writer():
    """The schema table names exactly the kinds the writer emits."""
    assert set(EVENT_KINDS) == {
        "start", "heartbeat", "epoch", "health", "anomaly", "finish", "failure",
    }
