"""Livelock and progress guarantees under stress (Sec 6.2).

The channel-switching restriction (packets banned from adaptive channels
after falling back to escape under congestion) must guarantee that every
packet still reaches its destination in bounded steps.  These tests drive
the adversarial patterns hard and verify global progress, bounded hop
counts, and that the ban mechanism actually engages.
"""

import pytest

from repro.noc.flit import Packet
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.experiment import run_synthetic
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern

from .conftest import make_network

CONFIG = SimConfig(sim_cycles=2_500, warmup_cycles=300)
GRID = ChipletGrid(2, 2, 4, 4)


@pytest.mark.parametrize(
    "family", ["serial_torus", "hetero_phy_torus", "serial_hypercube", "hetero_channel"]
)
def test_overload_makes_progress_without_deadlock(family):
    """Far-over-saturation traffic keeps moving (deadlock watchdog armed)."""
    spec, network, stats = make_network(family, GRID, CONFIG)
    pattern = make_pattern("complement", GRID.n_nodes)
    workload = SyntheticWorkload(
        pattern, GRID.n_nodes, 1.5, 16, until=CONFIG.sim_cycles, seed=1
    )
    engine = Engine(network, workload, stats, deadlock_threshold=1_000)
    engine.run(CONFIG.sim_cycles)  # DeadlockError would propagate
    assert stats.packets_delivered > 100


def test_ban_mechanism_engages_under_congestion():
    spec, network, stats = make_network("hetero_channel", ChipletGrid(4, 4, 2, 2), CONFIG)
    banned_seen = 0
    original = stats.note_packet_delivered

    def tap(packet, now):
        nonlocal banned_seen
        if packet.adaptive_banned:
            banned_seen += 1
        original(packet, now)

    stats.note_packet_delivered = tap
    pattern = make_pattern("complement", 64)
    workload = SyntheticWorkload(pattern, 64, 0.8, 16, until=CONFIG.sim_cycles, seed=2)
    Engine(network, workload, stats).run(CONFIG.sim_cycles)
    # Banned packets exist under this load AND they were all delivered.
    assert banned_seen > 0


@pytest.mark.parametrize("family", ["hetero_phy_torus", "hetero_channel"])
def test_hop_counts_bounded(family):
    """No packet wanders: hop counts stay within a small multiple of the
    network diameter even under congestion (livelock freedom)."""
    spec, network, stats = make_network(family, GRID, CONFIG)
    max_hops = 0
    original = stats.note_packet_delivered

    def tap(packet, now):
        nonlocal max_hops
        max_hops = max(max_hops, packet.hops_onchip + packet.hops_interface)
        original(packet, now)

    stats.note_packet_delivered = tap
    pattern = make_pattern("uniform", GRID.n_nodes)
    workload = SyntheticWorkload(pattern, GRID.n_nodes, 0.5, 16, until=CONFIG.sim_cycles, seed=3)
    Engine(network, workload, stats).run(CONFIG.sim_cycles)
    diameter = GRID.width + GRID.height
    assert 0 < max_hops <= diameter + 4  # minimal-ish paths only


def test_single_packet_under_background_noise_arrives():
    """A tagged packet crosses a congested network in bounded time."""
    spec, network, stats = make_network("hetero_phy_torus", GRID, CONFIG)
    probe = Packet(0, GRID.n_nodes - 1, 16, 400)

    class Noisy:
        def __init__(self):
            self.bg = SyntheticWorkload(
                make_pattern("uniform", GRID.n_nodes),
                GRID.n_nodes,
                0.6,
                16,
                until=CONFIG.sim_cycles,
                seed=4,
            )
            self.sent = False

        def step(self, now):
            packets = list(self.bg.step(now))
            if now == 400 and not self.sent:
                packets.append(probe)
                self.sent = True
            return packets

        def done(self, now):
            return False

    Engine(network, Noisy(), stats).run(CONFIG.sim_cycles)
    assert probe.arrive_cycle is not None
    assert probe.latency < CONFIG.sim_cycles / 2
