"""Tests for the memory ledger (``repro.telemetry.memprof``)."""

import tracemalloc

import pytest

from repro.telemetry.memprof import (
    MEM_SCHEMA_VERSION,
    MemLedger,
    MemProfError,
    fmt_bytes,
    render_mem_table,
    validate_mem_block,
)


def test_ledger_measures_allocations_in_the_observed_region():
    with MemLedger() as ledger:
        keep = [bytearray(64 * 1024) for _ in range(8)]
    assert ledger.peak_bytes >= 8 * 64 * 1024
    assert ledger.current_bytes >= 8 * 64 * 1024  # still live at stop
    del keep
    summary = ledger.record_summary()
    assert validate_mem_block(summary) is summary
    assert summary["schema_version"] == MEM_SCHEMA_VERSION
    assert summary["top_sites"], "the bytearray site must appear"
    assert summary["top_sites"][0]["bytes"] >= 64 * 1024
    assert "test_memprof" in summary["top_sites"][0]["site"]
    assert not tracemalloc.is_tracing()  # owned trace is torn down


def test_ledger_peak_is_relative_to_start_baseline():
    ballast = [bytearray(256 * 1024)]
    with MemLedger() as ledger:
        small = bytearray(1024)
    del ballast, small
    # The pre-existing ballast must not count against the observed region.
    assert ledger.peak_bytes < 256 * 1024


def test_ledger_piggybacks_on_a_running_trace():
    tracemalloc.start()
    try:
        with MemLedger() as ledger:
            keep = bytearray(128 * 1024)
        assert ledger.peak_bytes >= 128 * 1024
        del keep
        assert tracemalloc.is_tracing()  # an outer trace is left running
    finally:
        tracemalloc.stop()


def test_ledger_lifecycle_misuse_raises():
    ledger = MemLedger()
    with pytest.raises(MemProfError, match="without start"):
        ledger.stop()
    ledger.start()
    with pytest.raises(MemProfError, match="twice"):
        ledger.start()
    ledger.stop()
    with pytest.raises(ValueError, match="top_n"):
        MemLedger(top_n=0)


def test_top_sites_capped_and_sorted():
    with MemLedger(top_n=3) as ledger:
        keep = [bytearray(32 * 1024) for _ in range(4)]
    del keep
    sites = ledger.record_summary()["top_sites"]
    assert len(sites) <= 3
    assert sites == sorted(sites, key=lambda s: s["bytes"], reverse=True)


def test_validate_mem_block_rejects_malformed():
    good = {
        "schema_version": MEM_SCHEMA_VERSION,
        "top_n": 10,
        "peak_bytes": 100,
        "current_bytes": 50,
        "ru_maxrss_bytes": None,
        "phases": {"other": 100},
        "top_sites": [],
    }
    assert validate_mem_block(dict(good)) == good
    with pytest.raises(MemProfError, match="not supported"):
        validate_mem_block({**good, "schema_version": MEM_SCHEMA_VERSION + 1})
    with pytest.raises(MemProfError, match="peak_bytes"):
        validate_mem_block({**good, "peak_bytes": -1})
    with pytest.raises(MemProfError, match="unknown mem phase"):
        validate_mem_block({**good, "phases": {"warp_drive": 1}})
    with pytest.raises(MemProfError, match="allocation site"):
        validate_mem_block({**good, "top_sites": [{"bytes": 1}]})
    with pytest.raises(MemProfError, match="dict"):
        validate_mem_block(None)


def test_fmt_bytes():
    assert fmt_bytes(None) == "n/a"
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2048) == "2.0 KiB"
    assert fmt_bytes(3 * 1024 * 1024) == "3.0 MiB"
    assert fmt_bytes(5 * 1024**3) == "5.0 GiB"


def test_render_mem_table():
    with MemLedger() as ledger:
        keep = bytearray(64 * 1024)
    del keep
    text = render_mem_table(ledger.record_summary())
    assert "peak heap" in text
    assert "allocation sites" in text
    assert "KiB" in text or "MiB" in text


def test_bench_doc_carries_validated_mem_block():
    from repro.telemetry.bench import CASES, run_bench

    doc = run_bench(scale="tiny", reps=1, seed=1, cases=[CASES[1]],
                    git_rev="cafef00d", mem_top=5)
    mem = doc["cases"][CASES[1].name]["mem"]
    validate_mem_block(mem)
    assert mem["peak_bytes"] > 0
    assert mem["top_n"] == 5
    assert len(mem["top_sites"]) <= 5
    # The simulator's own allocations dominate: at least one site folds
    # onto a known pipeline phase rather than "other".
    assert any(site["phase"] != "other" for site in mem["top_sites"])
