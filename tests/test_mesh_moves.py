"""Property tests for negative-first mesh routing math."""

from hypothesis import given
from hypothesis import strategies as st

from repro.routing.mesh_moves import (
    NEGATIVE_DIRS,
    POSITIVE_DIRS,
    is_negative_first_legal,
    manhattan,
    minimal_moves,
    negative_first_moves,
)

coords = st.tuples(st.integers(0, 15), st.integers(0, 15))


@given(coords, coords)
def test_minimal_moves_empty_iff_arrived(cur, dst):
    assert (not minimal_moves(cur, dst)) == (cur == dst)


@given(coords, coords)
def test_minimal_moves_reduce_distance(cur, dst):
    deltas = {"E": (1, 0), "W": (-1, 0), "N": (0, 1), "S": (0, -1)}
    for move in minimal_moves(cur, dst):
        dx, dy = deltas[move]
        nxt = (cur[0] + dx, cur[1] + dy)
        assert manhattan(nxt, dst) == manhattan(cur, dst) - 1


@given(coords, coords)
def test_negative_first_subset_of_minimal(cur, dst):
    assert set(negative_first_moves(cur, dst)) <= set(minimal_moves(cur, dst))


@given(coords, coords)
def test_negative_first_orders_negatives_first(cur, dst):
    moves = negative_first_moves(cur, dst)
    negatives_needed = [m for m in minimal_moves(cur, dst) if m in NEGATIVE_DIRS]
    if negatives_needed:
        assert set(moves) == set(negatives_needed)
    else:
        assert all(m in POSITIVE_DIRS for m in moves)


@given(coords, coords)
def test_negative_first_path_is_legal_and_terminates(cur, dst):
    """Greedily following negative-first moves reaches dst on a legal path."""
    deltas = {"E": (1, 0), "W": (-1, 0), "N": (0, 1), "S": (0, -1)}
    path = []
    pos = cur
    for _ in range(100):
        moves = negative_first_moves(pos, dst)
        if not moves:
            break
        move = moves[0]
        path.append(move)
        dx, dy = deltas[move]
        pos = (pos[0] + dx, pos[1] + dy)
    assert pos == dst
    assert len(path) == manhattan(cur, dst)
    assert is_negative_first_legal(path)


def test_is_negative_first_legal_examples():
    assert is_negative_first_legal(["W", "S", "E", "N"])
    assert is_negative_first_legal([])
    assert is_negative_first_legal(["E", "N"])
    assert not is_negative_first_legal(["E", "W"])
    assert not is_negative_first_legal(["N", "S"])


@given(coords, coords)
def test_manhattan_symmetry(cur, dst):
    assert manhattan(cur, dst) == manhattan(dst, cur)
    assert manhattan(cur, cur) == 0
