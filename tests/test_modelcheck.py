"""Bounded model checker: realized deadlocks, refutations, trace replay.

The ring fixture (a cyclic *escape* discipline on a 4-node torus row,
also shipped as ``examples/broken_escape.py``) must be driven into a
concrete deadlock whose counterexample trace reproduces a real
:class:`DeadlockError` in the cycle-accurate simulator.  The shipped
families' wormhole-mode CDG cycles must instead be refuted.
"""

from repro.analysis import (
    CounterexampleTrace,
    build_cdg,
    check_network,
    cycle_feed_pool,
    replay_counterexample,
)
from repro.analysis.modelcheck import (
    VERDICT_DEADLOCK,
    VERDICT_REFUTED_BOUNDED,
    VERDICT_REFUTED_EXHAUSTIVE,
)
from repro.sim.config import SimConfig
from repro.sim.stats import DeadlockError, Stats
from repro.topology.grid import ChipletGrid

from .conftest import make_network

#: One 4-node torus row — the smallest grid with a wraparound ring.
RING_GRID = ChipletGrid(2, 1, 2, 1)


def _ring_routing(router, packet):
    """Eastward-only escape ring: a cyclic escape CDG by construction."""
    if packet.dst == router.node:
        return [(0, 0, True)]
    by_tag = router.out_port_by_tag
    port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
    if port is None:
        port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
    return [(port, 0, True)]


def _ring_network(stats=None):
    config = SimConfig()
    spec, network, built_stats = make_network(
        "serial_torus", RING_GRID, config, routing=_ring_routing
    )
    return spec, network, stats or built_stats


def _ring_deadlock():
    spec, network, _ = _ring_network()
    cycle = build_cdg(network, "vct").cycle()
    assert cycle, "ring routing must produce a cyclic escape CDG"
    packet_length = spec.config.packet_length
    pool = cycle_feed_pool(network, cycle, packet_length=packet_length)
    assert pool, "traffic must be able to enter the cycle channels"
    result = check_network(
        network,
        packet_length=packet_length,
        pool=pool,
        focus_cycle=cycle,
        max_states=4_000,
    )
    return spec, cycle, result


def test_ring_cycle_is_realized_as_deadlock():
    _spec, cycle, result = _ring_deadlock()
    assert result.verdict == VERDICT_DEADLOCK
    assert result.deadlock
    assert result.explored > 0
    trace = result.counterexample
    assert trace is not None
    assert trace.injections
    # Every wedged channel lies on the reported CDG cycle: the search
    # realized *that* cycle, not some unrelated congestion.
    assert {(link, vc) for link, vc, _n in trace.deadlock_channels} <= set(cycle)


def test_counterexample_replays_as_real_deadlock():
    _spec, _cycle, result = _ring_deadlock()
    trace = result.counterexample
    stats = Stats()
    _spec2, network, _ = _ring_network(stats)
    outcome = replay_counterexample(network, stats, trace)
    assert outcome.deadlocked, "abstract deadlock must reproduce in the simulator"
    assert isinstance(outcome.error, DeadlockError)
    assert outcome.cycles > 0


def test_wormhole_cycles_of_shipped_families_are_refuted():
    spec, network, _ = make_network(
        "serial_torus", ChipletGrid(2, 2, 3, 3), SimConfig()
    )
    cycle = build_cdg(network, "wormhole").cycle()
    assert cycle, "wormhole-mode CDG of the adaptive torus is cyclic"
    packet_length = spec.config.packet_length
    pool = cycle_feed_pool(network, cycle, packet_length=packet_length)
    result = check_network(
        network,
        packet_length=packet_length,
        pool=pool,
        focus_cycle=cycle,
        max_states=1_500,
    )
    assert not result.deadlock
    assert result.verdict in (VERDICT_REFUTED_BOUNDED, VERDICT_REFUTED_EXHAUSTIVE)


def test_small_clean_search_is_exhaustive():
    _spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(1, 1, 2, 2), SimConfig()
    )
    result = check_network(
        network,
        packet_length=SimConfig().packet_length,
        pool=[(0, 3)],
        max_states=20_000,
        max_packets=4,
    )
    assert result.verdict == VERDICT_REFUTED_EXHAUSTIVE
    assert result.exhaustive
    assert result.counterexample is None


def test_trace_round_trips_through_json_dict():
    trace = CounterexampleTrace(
        injections=[(1, 3), (3, 2)],
        packet_length=16,
        deadlock_channels=[(0, 0, 2), (4, 0, 14)],
    )
    restored = CounterexampleTrace.from_dict(trace.to_dict())
    assert restored == trace
    text = trace.render()
    assert "node 1 -> node 3" in text
    assert "link 4 vc 0: 14 packet(s)" in text
