"""Tests for multi-package hetero-channel systems (Sec 3.2 / Fig 6b)."""

import pytest

from repro.noc.channel import ChannelKind
from repro.routing.deadlock import analyse_escape
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.multipackage import build_hetero_channel_packages, package_of
from repro.topology.system import build_hetero_channel

GRID = ChipletGrid(4, 2, 3, 3)  # 8 chiplets -> 3 cube dims
CONFIG = SimConfig(sim_cycles=1_500, warmup_cycles=200)


def test_package_of_tiles_grid():
    packages = (2, 1)
    left = {c for c in range(GRID.n_chiplets) if package_of(GRID, c, packages) == 0}
    right = {c for c in range(GRID.n_chiplets) if package_of(GRID, c, packages) == 1}
    assert len(left) == len(right) == 4
    for chiplet in left:
        cx, _ = GRID.chiplet_coords(chiplet)
        assert cx < 2


def test_package_split_must_tile():
    with pytest.raises(ValueError):
        package_of(GRID, 0, (3, 1))


def test_builder_validation():
    with pytest.raises(ValueError):
        build_hetero_channel_packages(GRID, CONFIG, packages=(0, 1))
    with pytest.raises(ValueError):
        build_hetero_channel_packages(
            GRID, CONFIG, packages=(2, 1), off_package_delay_factor=0.5
        )


def test_off_package_links_become_slow_serial():
    spec = build_hetero_channel_packages(
        GRID, CONFIG, packages=(2, 1), off_package_delay_factor=2.0
    )
    base = build_hetero_channel(GRID, CONFIG)
    assert len(spec.channels) == len(base.channels)  # topology preserved
    slow = [
        c for c in spec.channels if c.phy.delay == CONFIG.serial_delay * 2
    ]
    assert slow
    for channel in slow:
        assert channel.kind is ChannelKind.SERIAL
        src_pkg = package_of(GRID, GRID.chiplet_of(channel.src), (2, 1))
        dst_pkg = package_of(GRID, GRID.chiplet_of(channel.dst), (2, 1))
        assert src_pkg != dst_pkg
    # no parallel channel crosses a package boundary
    for channel in spec.channels:
        if channel.kind is ChannelKind.PARALLEL:
            src_pkg = package_of(GRID, GRID.chiplet_of(channel.src), (2, 1))
            dst_pkg = package_of(GRID, GRID.chiplet_of(channel.dst), (2, 1))
            assert src_pkg == dst_pkg


def test_escape_still_deadlock_free():
    spec = build_hetero_channel_packages(GRID, CONFIG, packages=(2, 1))
    network = build_network(spec, Stats())
    analysis = analyse_escape(network)
    assert analysis.deadlock_free


def test_traffic_flows_across_packages():
    spec = build_hetero_channel_packages(GRID, CONFIG, packages=(2, 2))
    result = run_synthetic(spec, "uniform", 0.1, seed=6)
    assert result.stats.delivered_fraction > 0.9


def test_package_boundary_costs_latency():
    single = build_hetero_channel(GRID, CONFIG)
    multi = build_hetero_channel_packages(
        GRID, CONFIG, packages=(2, 1), off_package_delay_factor=3.0
    )
    lat_single = run_synthetic(single, "uniform", 0.05, seed=7).avg_latency
    lat_multi = run_synthetic(multi, "uniform", 0.05, seed=7).avg_latency
    assert lat_multi > lat_single
