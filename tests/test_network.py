"""Tests for network construction and the activity scheduler."""

import pytest

from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.network import Network, default_link_factory
from repro.sim.stats import Stats

from .helpers import build_chain, chain_spec, forward_routing, run_cycles


def test_requires_positive_size():
    with pytest.raises(ValueError):
        Network(0, Stats())


def test_default_factory_rejects_hetero():
    spec = chain_spec(0, 1, ChannelKind.HETERO_PHY)
    with pytest.raises(ValueError, match="HeteroPhyLink"):
        default_link_factory(spec)


def test_step_requires_finalize():
    network = Network(2, Stats())
    network.add_channel(chain_spec(0, 1))
    network.set_routing(forward_routing)
    with pytest.raises(RuntimeError, match="finalize"):
        network.step(0)


def test_add_channel_after_finalize_rejected():
    network, _ = build_chain(2)
    with pytest.raises(RuntimeError):
        network.add_channel(chain_spec(1, 0))


def test_interface_credit_slack_applied():
    """Interface channels get bandwidth x round-trip extra credits."""
    network = Network(2, Stats())
    onchip_spec = chain_spec(0, 1, ChannelKind.ONCHIP, buffer_depth=32)
    network.add_channel(onchip_spec)
    serial_spec = chain_spec(1, 0, ChannelKind.SERIAL, bandwidth=4, delay=20, buffer_depth=64)
    network.add_channel(serial_spec)
    onchip_credits = network.routers[0].outputs[1].credits[0]
    serial_credits = network.routers[1].outputs[1].credits[0]
    assert onchip_credits == 32  # on-chip: plain buffer depth
    assert serial_credits == 64 + 4 * (20 + 20)  # buffer + bw * (delay + credit delay)


def test_idle_network_deactivates_everything():
    network, _ = build_chain(3)
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 50)
    # After draining, further steps should find no active work.
    assert network.buffered_flits() == 0
    assert network.in_flight_flits() == 0
    assert not network._router_work
    assert not network._link_work


def test_activity_wakes_on_injection():
    network, _ = build_chain(2)
    run_cycles(network, 5)
    assert not network._router_work
    network.inject(Packet(0, 1, 1, 5))
    assert network._router_work
    run_cycles(network, 10, start=5)
    assert network.buffered_flits() == 0


def test_serial_full_throughput_not_credit_limited():
    """The 'additional buffer' (Sec 7.1) lets a serial link stream at 4/cy."""
    network, stats = build_chain(
        2, ChannelKind.SERIAL, bandwidth=4, delay=20, buffer_depth=64
    )
    # 25 packets of 16 flits = 400 flits; at 4 flits/cycle that is 100
    # cycles of streaming + pipeline fill.
    packets = [Packet(0, 1, 16, 0) for _ in range(25)]
    for packet in packets:
        network.inject(packet)
    run_cycles(network, 200)
    assert all(p.arrive_cycle is not None for p in packets)
    last = max(p.arrive_cycle for p in packets)
    # Without the slack, 64 credits over a ~40-cycle round trip cap
    # the link at ~1.6 flits/cycle (>= 250 cycles for 400 flits).
    assert last <= 150


def test_stats_flow_from_network():
    network, stats = build_chain(2)
    packet = Packet(0, 1, 4, 0)
    network.inject(packet)
    stats.note_packet_injected(packet)
    run_cycles(network, 20)
    assert stats.packets_delivered == 1
    assert stats.router_flits > 0
