"""Tests for the PARSEC-like trace generator."""

import pytest

from repro.topology.grid import ChipletGrid
from repro.traffic.parsec import (
    CONTROL_FLITS,
    DATA_FLITS,
    PARSEC_PROFILES,
    generate_parsec_trace,
)

GRID = ChipletGrid(4, 4, 2, 2)  # the paper's 64-node PARSEC system


def test_nine_applications_defined():
    assert len(PARSEC_PROFILES) == 9
    assert "canneal" in PARSEC_PROFILES and "blackscholes" in PARSEC_PROFILES


def test_unknown_app_rejected():
    with pytest.raises(ValueError):
        generate_parsec_trace("doom", GRID, 100)


def test_duration_validation():
    with pytest.raises(ValueError):
        generate_parsec_trace("canneal", GRID, 0)


def test_netrace_packet_sizes_only():
    trace = generate_parsec_trace("canneal", GRID, 2000)
    sizes = {r.length for r in trace.records}
    assert sizes <= {CONTROL_FLITS, DATA_FLITS}
    assert sizes == {CONTROL_FLITS, DATA_FLITS}


def test_requests_have_matching_replies():
    trace = generate_parsec_trace("ferret", GRID, 2000)
    # request/reply pairing: equal numbers of both packet sizes.
    controls = sum(1 for r in trace.records if r.length == CONTROL_FLITS)
    datas = sum(1 for r in trace.records if r.length == DATA_FLITS)
    assert controls == datas


def test_endpoints_within_grid():
    trace = generate_parsec_trace("x264", GRID, 1000)
    for record in trace.records:
        assert 0 <= record.src < GRID.n_nodes
        assert 0 <= record.dst < GRID.n_nodes
        assert record.src != record.dst


def test_rate_ordering_matches_profiles():
    """Heavier applications generate proportionally more traffic."""
    heavy = generate_parsec_trace("canneal", GRID, 4000)
    light = generate_parsec_trace("blackscholes", GRID, 4000)
    assert heavy.total_flits > 2 * light.total_flits


def test_deterministic_given_seed():
    a = generate_parsec_trace("dedup", GRID, 1000, seed=3)
    b = generate_parsec_trace("dedup", GRID, 1000, seed=3)
    assert a.records == b.records
    c = generate_parsec_trace("dedup", GRID, 1000, seed=4)
    assert a.records != c.records


def test_locality_shifts_distance_distribution():
    """A high-locality profile produces shorter-range traffic."""
    import dataclasses

    from repro.traffic import parsec

    local = dataclasses.replace(PARSEC_PROFILES["canneal"], locality=0.9)
    with_patch = dict(PARSEC_PROFILES)
    with_patch["canneal"] = local
    original = parsec.PARSEC_PROFILES
    parsec.PARSEC_PROFILES = with_patch
    try:
        near = parsec.generate_parsec_trace("canneal", GRID, 3000)
    finally:
        parsec.PARSEC_PROFILES = original
    far = generate_parsec_trace("canneal", GRID, 3000)

    def mean_dist(trace):
        total = n = 0
        for r in trace.records:
            (sx, sy), (dx, dy) = GRID.coords(r.src), GRID.coords(r.dst)
            total += abs(sx - dx) + abs(sy - dy)
            n += 1
        return total / n

    assert mean_dist(near) < mean_dist(far)


def test_traffic_present_across_nodes():
    trace = generate_parsec_trace("vips", GRID, 4000)
    sources = {r.src for r in trace.records}
    assert len(sources) > GRID.n_nodes // 2
