"""Tests for synthetic traffic patterns."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.grid import ChipletGrid
from repro.traffic.patterns import (
    FIGURE_PATTERNS,
    PATTERNS,
    BitComplement,
    BitReverse,
    BitShuffle,
    BitTranspose,
    LocalUniform,
    UniformHotspot,
    UniformRandom,
    make_pattern,
)

RNG = np.random.default_rng(0)


def test_registry_covers_figure_patterns():
    for name in FIGURE_PATTERNS:
        assert name in PATTERNS


def test_make_pattern_unknown():
    with pytest.raises(ValueError):
        make_pattern("zipf", 16)


def test_patterns_need_two_nodes():
    with pytest.raises(ValueError):
        UniformRandom(1)


@given(st.integers(2, 300), st.data())
def test_uniform_never_self(n, data):
    pattern = UniformRandom(n)
    src = data.draw(st.integers(0, n - 1))
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    for _ in range(5):
        assert pattern.dest(src, rng) != src


def test_uniform_covers_all_destinations():
    pattern = UniformRandom(8)
    rng = np.random.default_rng(1)
    seen = {pattern.dest(3, rng) for _ in range(500)}
    assert seen == set(range(8)) - {3}


def test_hotspot_sources_restricted():
    pattern = UniformHotspot(100, fraction=0.1, seed=4)
    sources = pattern.sources()
    assert len(sources) == 10
    for src in sources:
        dst = pattern.dest(src, RNG)
        assert dst != src
        # fixed partner: deterministic
        assert pattern.dest(src, RNG) == dst


def test_hotspot_rejects_non_participant():
    pattern = UniformHotspot(100, fraction=0.1, seed=4)
    outsider = next(n for n in range(100) if n not in set(pattern.sources()))
    with pytest.raises(ValueError):
        pattern.dest(outsider, RNG)


def test_hotspot_fraction_validation():
    with pytest.raises(ValueError):
        UniformHotspot(10, fraction=0.0)


@pytest.mark.parametrize("cls", [BitShuffle, BitComplement, BitTranspose, BitReverse])
def test_bit_patterns_deterministic_and_not_self(cls):
    pattern = cls(64)
    for src in range(64):
        dst = pattern.dest(src, RNG)
        assert dst == pattern.dest(src, RNG)
        assert 0 <= dst < 64
        assert dst != src


@pytest.mark.parametrize("cls", [BitShuffle, BitComplement, BitTranspose, BitReverse])
def test_bit_patterns_bijective_on_power_of_two(cls):
    """On 2^b nodes the raw permutation is a bijection."""
    pattern = cls(64)
    images = {pattern._permute(src) for src in range(64)}
    assert images == set(range(64))


def test_bit_complement_definition():
    pattern = BitComplement(64)
    assert pattern._permute(0b000000) == 0b111111
    assert pattern._permute(0b101010) == 0b010101


def test_bit_shuffle_definition():
    pattern = BitShuffle(64)  # rotate left on 6 bits
    assert pattern._permute(0b100000) == 0b000001
    assert pattern._permute(0b000001) == 0b000010


def test_bit_reverse_definition():
    pattern = BitReverse(64)
    assert pattern._permute(0b100010) == 0b010001
    assert pattern._permute(0b111000) == 0b000111


def test_bit_transpose_definition():
    pattern = BitTranspose(64)  # rotate by b/2 = 3
    assert pattern._permute(0b111000) == 0b000111


@pytest.mark.parametrize("cls", [BitShuffle, BitComplement, BitTranspose, BitReverse])
def test_bit_patterns_handle_non_power_of_two(cls):
    pattern = cls(3136)  # the Fig 14 node count
    for src in (0, 1, 1000, 3135):
        dst = pattern.dest(src, RNG)
        assert 0 <= dst < 3136
        assert dst != src


def test_local_pattern_stays_in_tile():
    grid = ChipletGrid(2, 2, 4, 4)
    pattern = LocalUniform(grid.n_nodes, grid=grid, span=4)
    rng = np.random.default_rng(2)
    for src in range(grid.n_nodes):
        gx, gy = grid.coords(src)
        for _ in range(5):
            dst = pattern.dest(src, rng)
            dx, dy = grid.coords(dst)
            assert dst != src
            # same offset tile
            off = pattern._offset
            assert (gx + off) // 4 == (dx + off) // 4
            assert (gy + off) // 4 == (dy + off) // 4


def test_local_pattern_tiles_straddle_chiplets():
    """Offset tiles must contain nodes from more than one chiplet."""
    grid = ChipletGrid(2, 2, 4, 4)
    pattern = LocalUniform(grid.n_nodes, grid=grid, span=4)
    straddling = 0
    for nodes in pattern._tiles.values():
        chiplets = {grid.chiplet_of(n) for n in nodes}
        if len(chiplets) > 1:
            straddling += 1
    assert straddling > 0


def test_local_pattern_validation():
    grid = ChipletGrid(2, 2, 4, 4)
    with pytest.raises(ValueError):
        LocalUniform(10, grid=grid, span=4)
    with pytest.raises(ValueError):
        LocalUniform(grid.n_nodes, grid=grid, span=0)


def test_local_pattern_excludes_partnerless_border_nodes():
    """Half-span offsetting can create single-node corner tiles; those
    nodes simply do not inject."""
    grid = ChipletGrid(2, 2, 4, 4)
    pattern = LocalUniform(grid.n_nodes, grid=grid, span=2)
    sources = set(pattern.sources())
    assert sources  # most nodes still communicate
    rng = np.random.default_rng(0)
    for src in sources:
        assert pattern.dest(src, rng) != src
