"""Tests for the hetero-PHY link and adapter (Sec 4.2)."""

import pytest

from repro.core.phy import HeteroPhyLink
from repro.core.scheduling import make_dispatch_policy
from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.router import Router
from repro.sim.config import SimConfig

from .helpers import build_chain, chain_spec, run_cycles


def hetero_chain(policy="performance", **kwargs):
    return build_chain(2, ChannelKind.HETERO_PHY, policy=policy, **kwargs)


def test_requires_hetero_spec():
    with pytest.raises(ValueError):
        HeteroPhyLink(chain_spec(0, 1), make_dispatch_policy("balanced", SimConfig()))


def test_single_flit_uses_parallel_phy():
    network, _ = hetero_chain(policy="balanced", bandwidth=2, delay=5)
    link = network.links[0]
    packet = Packet(0, 1, 1, 0)
    network.inject(packet)
    run_cycles(network, 40)
    assert packet.arrive_cycle is not None
    assert link.flits_parallel == 1
    assert link.flits_serial == 0
    # adapter adds one cycle on top of the parallel link's delay (Sec 8.2).
    # chain with delay 1 gives arrival 3; parallel delay 5 adds 4; +1 adapter.
    assert packet.arrive_cycle == 3 + 4 + 1


def test_balanced_policy_keeps_single_packet_parallel():
    network, _ = hetero_chain(policy="balanced")
    link = network.links[0]
    packet = Packet(0, 1, 16, 0)
    network.inject(packet)
    run_cycles(network, 60)
    assert link.flits_serial == 0
    assert link.flits_parallel == 16


def test_balanced_policy_engages_serial_under_pressure():
    network, _ = hetero_chain(policy="balanced")
    link = network.links[0]
    for _ in range(6):
        network.inject(Packet(0, 1, 16, 0))
    run_cycles(network, 200)
    assert link.flits_serial > 0
    assert link.flits_parallel > 0
    assert link.flits_parallel + link.flits_serial == 96


def test_performance_policy_uses_both_phys():
    network, _ = hetero_chain(policy="performance")
    link = network.links[0]
    for _ in range(3):
        network.inject(Packet(0, 1, 16, 0))
    run_cycles(network, 100)
    assert link.flits_serial > 0


def test_energy_efficient_policy_never_uses_serial():
    network, _ = hetero_chain(policy="energy_efficient")
    link = network.links[0]
    for _ in range(6):
        network.inject(Packet(0, 1, 16, 0))
    run_cycles(network, 300)
    assert link.flits_serial == 0
    assert link.flits_parallel == 96


def test_flits_delivered_in_order_despite_phy_split():
    """The reorder buffer restores per-VC transmit order (SN order)."""
    network, _ = hetero_chain(policy="performance")
    delivered: list[tuple[int, int]] = []
    original = Router._eject

    def spy(self, flit, now):
        delivered.append((flit.packet.pid, flit.index))
        original(self, flit, now)

    Router._eject = spy
    try:
        packets = [Packet(0, 1, 16, 0) for _ in range(4)]
        for packet in packets:
            network.inject(packet)
        run_cycles(network, 300)
    finally:
        Router._eject = original
    assert all(p.arrive_cycle is not None for p in packets)
    # per-packet flit order is strictly increasing
    by_packet: dict[int, list[int]] = {}
    for pid, index in delivered:
        by_packet.setdefault(pid, []).append(index)
    for indices in by_packet.values():
        assert indices == sorted(indices)
        assert indices == list(range(16))


def test_rob_occupancy_bounded_by_eq1():
    """Eq (1): ROB occupancy never exceeds B_p * (D_s - D_p)."""
    network, _ = hetero_chain(policy="performance", bandwidth=2, delay=5)
    link = network.links[0]
    for _ in range(8):
        network.inject(Packet(0, 1, 16, 0))
    peak = 0
    for now in range(400):
        network.stats.now = now
        network.step(now)
        peak = max(peak, link.rob.occupancy)
    bound = 2 * (20 - 5)
    assert 0 < link.rob.max_occupancy <= bound


def test_bypass_jumps_queue_for_priority_packet():
    """A high-priority packet overtakes an identical plain packet (Sec 4.2).

    The link bandwidth is halved so the adapter's dispatch queue backs up;
    the priority packet skips that queue through the parallel-PHY bypass
    while the plain packet waits behind the bulk flits.
    """
    network, _ = hetero_chain(
        policy="performance", bandwidth=1, serial_bandwidth=2
    )
    bulk = [Packet(0, 1, 16, 0) for _ in range(4)]
    for packet in bulk:
        network.inject(packet)
    urgent = Packet(0, 1, 1, 0, priority=5)
    plain = Packet(0, 1, 1, 0)
    network.inject(urgent)
    network.inject(plain)
    run_cycles(network, 600)
    link = network.links[0]
    assert urgent.arrive_cycle is not None and plain.arrive_cycle is not None
    assert link.flits_bypassed >= 1
    assert urgent.arrive_cycle < plain.arrive_cycle


def test_bypass_disabled_under_energy_efficient_policy():
    network, _ = hetero_chain(policy="energy_efficient")
    for _ in range(2):
        network.inject(Packet(0, 1, 16, 0))
    network.inject(Packet(0, 1, 1, 0, priority=5))
    run_cycles(network, 300)
    assert network.links[0].flits_bypassed == 0


def test_phy_split_property():
    network, _ = hetero_chain(policy="performance")
    link = network.links[0]
    for _ in range(2):
        network.inject(Packet(0, 1, 16, 0))
    run_cycles(network, 100)
    par, ser = link.phy_split
    assert par == link.flits_parallel
    assert ser == link.flits_serial
    assert par + ser == 32


def test_energy_charged_per_phy():
    network, stats = hetero_chain(policy="energy_efficient", bandwidth=2, delay=5)
    packet = Packet(0, 1, 4, 0)
    network.inject(packet)
    run_cycles(network, 60)
    # chain_spec hetero: parallel energy 1.0 pJ/bit -> 64 pJ per flit.
    assert packet.energy_interface_pj == pytest.approx(4 * 64 * 1.0)


def test_accept_budget_respects_tx_fifo():
    config = SimConfig(tx_fifo_depth=8)
    network, _ = build_chain(
        2, ChannelKind.HETERO_PHY, policy="energy_efficient", config=config
    )
    link = network.links[0]
    assert link.tx_fifo_depth == 8
    assert link.accept_budget(0) <= 6  # total bandwidth cap
