"""Certification engine: `repro prove` semantics and certificates.

The core agreement property: `prove` must certify exactly what `check`
passes *plus* the CDG cycles the model checker refutes — and must keep
failing (with a replayable counterexample) when a cycle is real.  The
certificate artifact must round-trip through JSON and reject foreign
schemas.
"""

import json

import pytest

from repro.analysis import (
    Certificate,
    CertificateError,
    Report,
    load_certificate,
    load_certificates,
    prove_family,
    verify_family,
    write_certificate,
)
from repro.analysis.prove import _CYCLE_CODES

from .test_modelcheck import RING_GRID, _ring_routing

MODES = ("vct", "wormhole")


@pytest.fixture(params=MODES)
def mode(request) -> str:
    return request.param


def test_prove_agrees_with_check_and_certifies(family, mode):
    """CDG-vs-modelcheck agreement across every family and mode."""
    check_report = verify_family(family, mode=mode)
    result = prove_family(family, mode=mode, fault_masks=False, max_states=1_500)
    assert result.certified, result.report.render(verbose=True)
    assert result.report.ok
    cert = result.certificate
    assert cert.family == family
    assert cert.mode == mode
    if check_report.ok:
        # Nothing to adjudicate: the checker never ran.
        assert "modelcheck" not in result.report.passes
        assert result.modelcheck is None
        assert cert.modelcheck == {}
        assert "CDG-CYCLE-REFUTED" not in result.report.codes()
    else:
        # `check` failed only through CDG cycles, and every one of them
        # was refuted and downgraded to a warning.
        assert {f.code for f in check_report.errors} <= set(_CYCLE_CODES)
        assert "modelcheck" in result.report.passes
        assert result.modelcheck is not None
        assert not result.modelcheck.deadlock
        assert cert.modelcheck["verdict"].startswith("refuted")
        assert "CDG-CYCLE-REFUTED" in {
            f.code for f in result.report.warnings
        }
        assert not any(f.code in _CYCLE_CODES for f in result.report.errors)


def test_prove_runs_all_passes_in_order(family):
    result = prove_family(family, mode="vct", max_states=1_500)
    expected = ["lint", "deadlock", "livelock", "contracts", "reachability",
                "fault-sweep"]
    assert result.report.passes[: len(expected)] == expected
    assert result.report.metrics["reach_states"] > 0
    assert result.certificate.fault_masks["swept"] == (
        result.report.metrics["fault_masks"]
    )
    assert result.certificate.fault_masks["broken"] == []


def test_broken_escape_is_refused_certification():
    result = prove_family(
        "serial_torus",
        chiplets=(RING_GRID.chiplets_x, RING_GRID.chiplets_y),
        nodes=(RING_GRID.nodes_x, RING_GRID.nodes_y),
        mode="vct",
        fault_masks=False,
        routing=_ring_routing,
    )
    assert not result.certified
    report = result.report
    assert "MC-DEADLOCK" in {f.code for f in report.errors}
    assert "CDG-CYCLE-REFUTED" not in report.codes()
    cert = result.certificate
    assert cert.modelcheck["verdict"] == "deadlock"
    assert cert.modelcheck["counterexample"]["injections"]
    assert cert.modelcheck["replay"]["deadlocked"] is True


def test_certificate_round_trips_through_json(tmp_path):
    result = prove_family("parallel_mesh", mode="vct", fault_masks=False)
    cert = result.certificate
    path = write_certificate(cert, tmp_path)
    assert path.name == f"CERT_{cert.system}_vct.json"
    restored = load_certificate(path)
    assert restored.to_dict() == cert.to_dict()
    assert restored.certified
    # The embedded report rehydrates with identical findings and verdict.
    report = restored.report_obj
    assert isinstance(report, Report)
    assert report.ok == result.report.ok
    assert report.codes() == result.report.codes()
    [listed] = load_certificates(tmp_path)
    assert listed.system == cert.system


def test_certificate_rejects_foreign_schema(tmp_path):
    result = prove_family("parallel_mesh", mode="vct", fault_masks=False)
    data = result.certificate.to_dict()
    data["schema_version"] = 99
    with pytest.raises(CertificateError, match="schema v99"):
        Certificate.from_dict(data)
    data["schema_version"] = 1
    data["surprise"] = True
    with pytest.raises(CertificateError, match="unknown fields"):
        Certificate.from_dict(data)
    bad = tmp_path / "CERT_bad_vct.json"
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(CertificateError, match="unreadable"):
        load_certificate(bad)
    bad.write_text(json.dumps(["a", "list"]), encoding="utf-8")
    with pytest.raises(CertificateError, match="not a JSON object"):
        load_certificate(bad)


def test_prove_rejects_unknown_family_and_mode():
    with pytest.raises(ValueError):
        prove_family("ring_of_rings")
    with pytest.raises(ValueError):
        prove_family("parallel_mesh", mode="store_and_forward")


def test_report_round_trips_through_dict():
    report = Report(system="unit", mode="wormhole", passes=["lint"])
    report.metrics["x"] = 3
    report.error("BOOM", "z", "an error")
    report.warning("WARN", "y", "a warning")
    restored = Report.from_dict(report.to_dict())
    assert restored.to_dict() == report.to_dict()
    assert not restored.ok
    assert restored.findings == report.findings
