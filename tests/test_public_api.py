"""The public API surface stays importable and complete."""

import importlib

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.noc",
        "repro.topology",
        "repro.routing",
        "repro.traffic",
        "repro.circuits",
        "repro.cost",
        "repro.sim",
        "repro.telemetry",
        "repro.energy",
        "repro.exps",
        "repro.viz",
        "repro.cli",
    ],
)
def test_subpackages_import_and_export(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_version_present():
    assert repro.__version__


def test_lazy_sim_attributes():
    import repro.sim

    assert callable(repro.sim.build_network)
    assert callable(repro.sim.run_synthetic)
    with pytest.raises(AttributeError):
        repro.sim.not_a_thing  # noqa: B018


def test_quickstart_docstring_example_runs():
    """The snippet in repro.__doc__ must actually work."""
    from repro import ChipletGrid, SimConfig, build_system, run_synthetic

    grid = ChipletGrid(chiplets_x=2, chiplets_y=2, nodes_x=2, nodes_y=2)
    config = SimConfig().scaled(cycles=800)
    system = build_system("hetero_phy_torus", grid, config)
    result = run_synthetic(system, "uniform", rate=0.1)
    assert result.avg_latency > 0
