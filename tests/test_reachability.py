"""Exhaustive reachability proofs and the single-link fault-mask sweep.

Positive direction: every family's routing-state graph is dead-end free,
escape covered and acyclic — both fault-free and under every single
adaptive-link fault mask (the Sec 9 claim `repro prove` certifies).
Negative direction: stranding, escape-free and cyclic routing functions
must each produce their REACH-* finding.
"""

from repro.analysis import (
    Report,
    analyse_reachability,
    reachability_pass,
    sweep_fault_masks,
    verify_network,
)
from repro.routing.fault import adaptive_link_indices
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid

from .conftest import make_network


def test_family_reachability_is_clean(family, small_grid):
    _spec, network, _ = make_network(family, small_grid, SimConfig())
    analysis = analyse_reachability(network)
    assert analysis.ok, (analysis.dead_ends, analysis.uncovered, analysis.cycle)
    assert analysis.n_states > 0
    assert analysis.max_hops > 0


def test_hop_bound_matches_livelock_pass(family, small_grid):
    """Reachability and livelock explore the same state graph: the
    delivery hop bound must agree with the livelock pass's bound."""
    spec, network, _ = make_network(family, small_grid, SimConfig())
    report = verify_network(spec, network)
    analysis = analyse_reachability(network)
    assert analysis.max_hops == report.metrics["max_hops_bound"]


def test_fault_sweep_keeps_every_family_deliverable(family, small_grid):
    config = SimConfig()

    def factory():
        return make_network(family, small_grid, config)[1]

    spec = make_network(family, small_grid, config)[0]
    sweep = sweep_fault_masks(factory, spec)
    assert sweep.ok, f"fault masks broke reachability: links {sweep.broken}"
    assert sweep.swept == len(adaptive_link_indices(factory(), spec))
    assert len(sweep.analyses) == sweep.swept


def test_fault_sweep_honours_explicit_link_list():
    config = SimConfig()
    grid = ChipletGrid(2, 2, 3, 3)

    def factory():
        return make_network("serial_torus", grid, config)[1]

    spec = make_network("serial_torus", grid, config)[0]
    all_links = adaptive_link_indices(factory(), spec)
    assert all_links, "torus families must expose safe-to-fail wrap links"
    sweep = sweep_fault_masks(factory, spec, links=all_links[:2])
    assert sweep.links == all_links[:2]
    assert sweep.swept == 2


def test_stranding_routing_is_a_dead_end():
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), SimConfig()
    )
    network.set_routing(
        lambda router, packet: [(0, 0, True)] if packet.dst == router.node else []
    )
    analysis = analyse_reachability(network)
    assert analysis.dead_ends
    report = Report(system=spec.name)
    reachability_pass(network, report)
    assert "REACH-DEADEND" in report.codes()
    assert not report.ok


def test_escape_free_routing_is_uncovered():
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), SimConfig()
    )
    base = network.routers[0].routing_fn

    def adaptive_only(router, packet):
        if packet.dst == router.node:
            return [(0, 0, True)]
        # Same minimal candidates, but none offered as escape.
        return [(p, vc, False) for p, vc, _esc in base(router, packet)]

    network.set_routing(adaptive_only)
    analysis = analyse_reachability(network)
    assert analysis.uncovered
    report = Report(system=spec.name)
    reachability_pass(network, report)
    assert "REACH-UNCOVERED" in report.codes()


def test_cyclic_routing_states_are_flagged():
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), SimConfig()
    )
    grid = spec.grid

    def pingpong(router, packet):
        if packet.dst == router.node:
            return [(0, 0, True)]
        by_tag = router.out_port_by_tag
        x, _y = grid.coords(router.node)
        direction = "E" if x % 2 == 0 else "W"
        port = by_tag.get(("mesh", direction))
        if port is None:
            port = next(iter(by_tag.values()))
        return [(port, 0, False)]

    network.set_routing(pingpong)
    analysis = analyse_reachability(network)
    assert analysis.cycle
    assert analysis.max_hops == -1  # unbounded: no delivery proof
    report = Report(system=spec.name)
    reachability_pass(network, report)
    assert "REACH-CYCLE" in report.codes()


def test_raising_routing_is_flagged():
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), SimConfig()
    )

    def raising(router, packet):
        if packet.dst == router.node:
            return [(0, 0, True)]
        raise KeyError("no route table entry")

    network.set_routing(raising)
    analysis = analyse_reachability(network)
    assert analysis.failures
    report = Report(system=spec.name)
    reachability_pass(network, report)
    assert "REACH-RAISES" in report.codes()
    assert not report.ok


def test_fault_target_prefixes_findings():
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), SimConfig()
    )
    network.set_routing(
        lambda router, packet: [(0, 0, True)] if packet.dst == router.node else []
    )
    report = Report(system=spec.name)
    reachability_pass(network, report, fault_target="fault link 9: ")
    assert any(f.target.startswith("fault link 9: ") for f in report.errors)
