"""Tests for the paper-vs-measured report generator."""

import math
from pathlib import Path

import pytest

from repro.exps.common import ExperimentResult
from repro.exps.report import (
    PAPER_TABLE3,
    load_result,
    summarize,
    summarize_reductions,
)


def write_csv(tmp_path: Path, name: str, result: ExperimentResult) -> None:
    (tmp_path / name).write_text(result.to_csv() + "\n")


def test_load_result_roundtrip(tmp_path):
    result = ExperimentResult("x", "t", ("a", "b", "c"))
    result.add("net", 1, 2.5)
    result.add("net2", 2, float("nan"))
    write_csv(tmp_path, "x_tiny.csv", result)
    loaded = load_result(tmp_path / "x_tiny.csv")
    assert loaded.headers == ("a", "b", "c")
    assert loaded.rows[0] == ("net", 1, 2.5)
    assert math.isnan(loaded.rows[1][2])


def test_summarize_reductions():
    result = ExperimentResult("x", "t", ("network", "avg_latency"))
    result.add("hetero", 80.0)
    result.add("parallel", 100.0)
    result.add("serial", 160.0)
    vs_p, vs_s = summarize_reductions(
        result, "avg_latency", "network", "hetero", "parallel", "serial"
    )
    assert vs_p == pytest.approx(0.2)
    assert vs_s == pytest.approx(0.5)


def test_summarize_reductions_with_group():
    result = ExperimentResult("x", "t", ("group", "network", "total_pj"))
    result.add("g1", "hetero", 50.0)
    result.add("g1", "parallel", 100.0)
    result.add("g1", "serial", 100.0)
    result.add("g2", "hetero", 999.0)
    vs_p, _ = summarize_reductions(
        result, "total_pj", "network", "hetero", "parallel", "serial",
        group_col="group", group="g1",
    )
    assert vs_p == pytest.approx(0.5)


def test_summarize_handles_missing_files(tmp_path):
    text = summarize(tmp_path, "small")
    assert "scale `small`" in text  # degrades gracefully


def test_summarize_renders_table3(tmp_path):
    result = ExperimentResult(
        "table3",
        "t",
        ("scale", "hphy_vs_parallel", "hphy_vs_serial", "hch_vs_parallel", "hch_vs_serial"),
    )
    result.add("16x(4x4)", 0.15, 0.2, 0.1, 0.2)
    write_csv(tmp_path, "table3_small.csv", result)
    text = summarize(tmp_path, "small")
    assert "Table 3" in text
    assert "+15.0%" in text
    assert "+16.4%" in text  # the paper value rendered alongside


def test_paper_table3_complete():
    assert set(PAPER_TABLE3) == {
        "4x(2x2)", "16x(2x2)", "16x(4x4)", "16x(6x6)", "64x(7x7)"
    }
