"""Tests for the closed-loop request/reply workload."""

import math

import pytest

from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.reqreply import REPLY_FLITS, REQUEST_FLITS, RequestReplyWorkload

GRID = ChipletGrid(2, 2, 3, 3)
CONFIG = SimConfig(sim_cycles=3_000, warmup_cycles=300)


def run_closed_loop(family="hetero_phy_torus", **kwargs):
    spec = build_system(family, GRID, CONFIG)
    stats = Stats(measure_from=CONFIG.warmup_cycles)
    network = build_network(spec, stats)
    workload = RequestReplyWorkload(
        stats, GRID.n_nodes, until=CONFIG.sim_cycles - 800, **kwargs
    )
    engine = Engine(network, workload, stats)
    engine.run_until_drained(CONFIG.sim_cycles + 100_000)
    return workload, stats


def test_validation():
    stats = Stats()
    with pytest.raises(ValueError):
        RequestReplyWorkload(stats, 1)
    with pytest.raises(ValueError):
        RequestReplyWorkload(stats, 8, issue_rate=1.5)
    with pytest.raises(ValueError):
        RequestReplyWorkload(stats, 8, mshrs=0)


def test_every_request_gets_exactly_one_reply():
    workload, stats = run_closed_loop(issue_rate=0.05)
    assert workload.requests_issued > 50
    assert workload.replies_delivered == workload.requests_issued
    assert workload.outstanding_total == 0
    assert len(workload.transaction_latencies) == workload.requests_issued


def test_transaction_latency_includes_both_legs():
    workload, _ = run_closed_loop(issue_rate=0.03, service_delay=30)
    avg = workload.avg_transaction_latency
    assert not math.isnan(avg)
    # two network traversals + 30 cycles of service is a hard lower bound
    assert avg > 30


def test_mshr_limit_respected():
    spec = build_system("hetero_phy_torus", GRID, CONFIG)
    stats = Stats(measure_from=CONFIG.warmup_cycles)
    network = build_network(spec, stats)
    workload = RequestReplyWorkload(
        stats, GRID.n_nodes, issue_rate=1.0, mshrs=2, until=2_000
    )
    engine = Engine(network, workload, stats)
    peak = 0
    for _ in range(60):
        engine.run(10)
        peak = max(peak, max(workload._outstanding))
    assert peak <= 2


def test_closed_loop_self_throttles():
    """High issue rate saturates issue, not source queues: outstanding is
    capped, so total issued requests are bounded by the reply round-trip."""
    eager, _ = run_closed_loop(issue_rate=1.0, mshrs=2)
    calm, _ = run_closed_loop(issue_rate=0.01, mshrs=2)
    assert eager.requests_issued > calm.requests_issued
    # even at issue_rate=1, throughput is bounded by round-trip/mshrs:
    upper = GRID.n_nodes * 2 * (CONFIG.sim_cycles)  # loose sanity bound
    assert eager.requests_issued < upper


def test_packet_sizes_match_netrace():
    spec = build_system("parallel_mesh", GRID, CONFIG)
    stats = Stats(measure_from=0)
    network = build_network(spec, stats)
    workload = RequestReplyWorkload(stats, GRID.n_nodes, issue_rate=0.05, until=300)
    sizes = set()
    for now in range(300):
        for packet in workload.step(now):
            sizes.add(packet.length)
            network.inject(packet)
            stats.note_packet_injected(packet)
        stats.now = now
        network.step(now)
    assert sizes <= {REQUEST_FLITS, REPLY_FLITS}
    assert REQUEST_FLITS in sizes


def test_faster_network_yields_lower_transaction_latency():
    fast, _ = run_closed_loop(family="hetero_phy_torus", issue_rate=0.04)
    slow, _ = run_closed_loop(family="serial_torus", issue_rate=0.04)
    assert fast.avg_transaction_latency < slow.avg_transaction_latency
