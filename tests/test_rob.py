"""Tests for the reorder buffer and Eq (1) sizing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rob import ReorderBuffer, RobOverflowError, rob_capacity
from repro.noc.flit import Packet


def make_flit(sn: int):
    flit = Packet(0, 1, 1, 0).make_flits()[0]
    flit.sn = sn
    return flit


def test_eq1_sizing():
    # Table 2 parameters: B_p = 2, D_s = 20, D_p = 5 -> 30 flits.
    assert rob_capacity(2, 20, 5) == 30
    # Halved interface: B_p = 1 -> 15 flits.
    assert rob_capacity(1, 20, 5) == 15


def test_eq1_never_below_one():
    assert rob_capacity(2, 5, 5) == 1
    assert rob_capacity(2, 5, 20) == 1


def test_eq1_validation():
    with pytest.raises(ValueError):
        rob_capacity(0, 20, 5)


def test_in_order_passthrough():
    rob = ReorderBuffer(4)
    rob.insert(make_flit(0), vc=0)
    rob.insert(make_flit(1), vc=0)
    released = list(rob.release())
    assert [f.sn for f, _ in released] == [0, 1]
    assert rob.occupancy == 0


def test_out_of_order_held_until_gap_fills():
    rob = ReorderBuffer(4)
    rob.insert(make_flit(1), vc=0)
    assert list(rob.release()) == []
    assert rob.occupancy == 1
    rob.insert(make_flit(0), vc=0)
    released = [f.sn for f, _ in rob.release()]
    assert released == [0, 1]


def test_per_vc_independence():
    """A stalled VC does not block other VCs (no head-of-line blocking)."""
    rob = ReorderBuffer(8)
    rob.insert(make_flit(1), vc=0)  # gap on VC 0
    rob.insert(make_flit(0), vc=1)
    released = list(rob.release())
    assert [(f.sn, vc) for f, vc in released] == [(0, 1)]
    assert rob.occupancy == 1


def test_release_budget_respected():
    rob = ReorderBuffer(8)
    for sn in range(5):
        rob.insert(make_flit(sn), vc=0)
    first = list(rob.release(budget=2))
    assert len(first) == 2
    rest = list(rob.release())
    assert len(rest) == 3


def test_insert_requires_sequence_number():
    rob = ReorderBuffer(4)
    flit = Packet(0, 1, 1, 0).make_flits()[0]
    with pytest.raises(ValueError):
        rob.insert(flit, vc=0)


def test_overflow_detected():
    rob = ReorderBuffer(2)
    for sn in (1, 2, 3):  # sn 0 missing: nothing can release
        rob.insert(make_flit(sn), vc=0)
    with pytest.raises(RobOverflowError):
        list(rob.release())


def test_capacity_validation():
    with pytest.raises(ValueError):
        ReorderBuffer(0)


def test_max_occupancy_tracks_waiting_flits():
    """max_occupancy samples flits still waiting after a release pass."""
    rob = ReorderBuffer(8)
    rob.insert(make_flit(2), vc=0)
    rob.insert(make_flit(1), vc=0)
    assert list(rob.release()) == []  # SN 0 missing: both wait
    assert rob.max_occupancy == 2
    rob.insert(make_flit(0), vc=0)
    assert len(list(rob.release())) == 3
    assert rob.max_occupancy == 2  # nothing waited after the drain
    assert rob.occupancy == 0


@given(st.permutations(list(range(8))))
def test_release_always_in_order(order):
    """Whatever the arrival order, release is in sequence-number order."""
    rob = ReorderBuffer(8)
    released: list[int] = []
    for sn in order:
        rob.insert(make_flit(sn), vc=0)
        released.extend(f.sn for f, _ in rob.release())
    assert released == sorted(released)
    assert released == list(range(8))


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 31)),
        max_size=64,
        unique=True,
    )
)
def test_release_in_order_per_vc(pairs):
    """Per-VC sequence order holds under interleaved multi-VC arrivals."""
    # build contiguous SN streams per VC from the draw
    per_vc: dict[int, int] = {}
    arrivals = []
    for vc, _ in pairs:
        sn = per_vc.get(vc, 0)
        per_vc[vc] = sn + 1
        arrivals.append((vc, sn))
    rob = ReorderBuffer(max(1, len(arrivals)))
    seen: dict[int, list[int]] = {}
    for vc, sn in arrivals:
        rob.insert(make_flit(sn), vc)
        for flit, flit_vc in rob.release():
            seen.setdefault(flit_vc, []).append(flit.sn)
    for vc, sns in seen.items():
        assert sns == list(range(len(sns)))
