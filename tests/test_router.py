"""Tests for the virtual-channel router: pipeline, wormhole, VCT, fairness."""

import pytest

from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.router import Router

from .helpers import build_chain, run_cycles


def test_zero_load_per_hop_latency():
    """Each on-chip hop costs 2 cycles (1 router + 1 wire) at zero load."""
    arrivals = {}
    for nodes in (2, 3, 4):
        network, _ = build_chain(nodes, bandwidth=2, delay=1)
        packet = Packet(0, nodes - 1, 1, 0)
        network.inject(packet)
        run_cycles(network, 40)
        arrivals[nodes] = packet.arrive_cycle
    assert arrivals[3] - arrivals[2] == 2
    assert arrivals[4] - arrivals[3] == 2


def test_wormhole_packets_stay_contiguous_per_vc():
    """Two packets on the same path do not interleave flits at delivery."""
    network, _ = build_chain(2, bandwidth=2, delay=1)
    delivered: list[int] = []
    original_eject = Router._eject

    def spy(self, flit, now):
        delivered.append(flit.packet.pid)
        original_eject(self, flit, now)

    Router._eject = spy
    try:
        a = Packet(0, 1, 8, 0)
        b = Packet(0, 1, 8, 0)
        network.inject(a)
        network.inject(b)
        run_cycles(network, 60)
    finally:
        Router._eject = original_eject
    assert a.arrive_cycle is not None and b.arrive_cycle is not None
    # With 2 injection VCs both packets are in flight concurrently, but
    # each packet's flits are delivered in order.
    positions_a = [i for i, pid in enumerate(delivered) if pid == a.pid]
    positions_b = [i for i, pid in enumerate(delivered) if pid == b.pid]
    assert len(positions_a) == len(positions_b) == 8


def test_vct_blocks_allocation_without_whole_packet_credit():
    """A 16-flit packet cannot allocate a VC whose buffer holds only 8."""
    network, _ = build_chain(2, bandwidth=2, delay=1, buffer_depth=8)
    packet = Packet(0, 1, 16, 0)
    network.inject(packet)
    run_cycles(network, 50)
    # The head can never win VC allocation: all flits stay at the source.
    assert packet.arrive_cycle is None
    assert network.routers[0].buffered_flits() == 16


def test_non_vct_router_allows_partial_buffering():
    from repro.noc.network import Network
    from repro.sim.stats import Stats

    from .helpers import chain_spec, forward_routing

    stats = Stats()
    network = Network(2, stats, vct=False)
    network.add_channel(chain_spec(0, 1, buffer_depth=8))
    network.set_routing(forward_routing)
    network.finalize()
    packet = Packet(0, 1, 16, 0)
    network.inject(packet)
    run_cycles(network, 60)
    assert packet.arrive_cycle is not None


def test_misrouted_flit_raises_at_ejection():
    network, _ = build_chain(3, bandwidth=2, delay=1)

    def bad_routing(router, packet):
        return [(Router.EJECT_PORT, 0, True)]  # eject everywhere

    network.set_routing(bad_routing)
    packet = Packet(0, 2, 1, 0)
    network.inject(packet)
    with pytest.raises(RuntimeError, match="ejected at node"):
        run_cycles(network, 10)


def test_empty_routing_candidates_rejected():
    network, _ = build_chain(2)

    def no_candidates(router, packet):
        return []

    network.set_routing(no_candidates)
    network.inject(Packet(0, 1, 1, 0))
    with pytest.raises(RuntimeError, match="no candidates"):
        run_cycles(network, 5)


def test_missing_routing_function_rejected():
    from repro.noc.network import Network
    from repro.sim.stats import Stats

    network = Network(1, Stats())
    with pytest.raises(RuntimeError, match="no routing function"):
        network.finalize()


def test_duplicate_channel_tag_rejected():
    from repro.noc.network import Network
    from repro.sim.stats import Stats

    from .helpers import chain_spec

    network = Network(2, Stats())
    spec_a = chain_spec(0, 1)
    spec_b = chain_spec(0, 1)
    spec_a.tag = ("mesh", "E")
    spec_b.tag = ("mesh", "E")
    network.add_channel(spec_a)
    with pytest.raises(ValueError, match="duplicate channel tag"):
        network.add_channel(spec_b)


def test_two_packets_different_vcs_share_link_bandwidth():
    """Packets on different VCs interleave on the link but both complete."""
    network, _ = build_chain(2, bandwidth=2, delay=1)
    a = Packet(0, 1, 16, 0)
    b = Packet(0, 1, 16, 0)
    network.inject(a)  # injection VC 0
    network.inject(b)  # injection VC 1
    run_cycles(network, 80)
    # 32 flits over a 2-flit/cycle link: about 16 send cycles.
    assert a.arrive_cycle is not None and b.arrive_cycle is not None
    assert max(a.arrive_cycle, b.arrive_cycle) <= 25


def test_injection_round_robins_over_vcs():
    network, _ = build_chain(2)
    router = network.routers[0]
    for _ in range(4):
        network.inject(Packet(0, 1, 1, 0))
    vcs = router.inputs[Router.INJECT_PORT].vcs
    assert len(vcs[0].queue) == 2
    assert len(vcs[1].queue) == 2


def test_buffered_flits_counts_all_queues():
    network, _ = build_chain(2)
    network.inject(Packet(0, 1, 5, 0))
    assert network.routers[0].buffered_flits() == 5
