"""Deeper router-internals tests: allocation fairness, credits, ejection."""

import pytest

from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.router import VC_ACTIVE, VC_IDLE, VC_VA, Router
from repro.sim.stats import Stats

from .helpers import build_chain, chain_spec, forward_routing, run_cycles


def test_vc_state_machine_lifecycle():
    network, _ = build_chain(2)
    router = network.routers[0]
    packet = Packet(0, 1, 2, 0)
    network.inject(packet)
    ivc = router.inputs[Router.INJECT_PORT].vcs[0]
    assert ivc.state == VC_IDLE
    network.stats.now = 0
    network.step(0)  # RC + VA complete within the cycle
    assert ivc.state == VC_ACTIVE
    assert ivc.out_port == 1
    run_cycles(network, 10, start=1)
    assert ivc.state == VC_IDLE  # tail sent, route released
    assert ivc.out_port == -1


def both_vc_routing(router, packet):
    if packet.dst == router.node:
        return [(Router.EJECT_PORT, 0, True)]
    return [(1, 0, True), (1, 1, True)]


def test_output_vc_exclusive_ownership():
    """Two packets on different injection VCs cannot share an output VC."""
    network, _ = build_chain(2)
    network.set_routing(both_vc_routing)
    router = network.routers[0]
    a = Packet(0, 1, 8, 0)
    b = Packet(0, 1, 8, 0)
    network.inject(a)
    network.inject(b)
    network.stats.now = 0
    network.step(0)
    out = router.outputs[1]
    owners = [owner for owner in out.vc_owner if owner is not None]
    assert len(owners) == len({id(o) for o in owners})
    assert len(owners) == 2  # each claimed a distinct VC


def test_third_packet_waits_for_free_vc():
    """With 2 output VCs and injection_vcs=3, the third packet waits in VA."""
    stats = Stats()
    network = Network(2, stats, injection_vcs=3)
    network.add_channel(chain_spec(0, 1, n_vcs=2))
    network.set_routing(both_vc_routing)
    network.finalize()
    for _ in range(3):
        network.inject(Packet(0, 1, 8, 0))
    stats.now = 0
    network.step(0)
    router = network.routers[0]
    states = sorted(vc.state for vc in router.inputs[0].vcs)
    assert states == [VC_VA, VC_ACTIVE, VC_ACTIVE]
    # the waiting packet eventually gets through
    run_cycles(network, 60, start=1)
    assert network.buffered_flits() == 0


def test_sa_round_robin_shares_output_bandwidth():
    """Two active VCs sharing one output alternate grants fairly."""
    network, _ = build_chain(2, bandwidth=1, delay=1)
    network.set_routing(both_vc_routing)
    a = Packet(0, 1, 10, 0)
    b = Packet(0, 1, 10, 0)
    network.inject(a)
    network.inject(b)
    run_cycles(network, 60)
    # both complete, neither starves: arrival cycles within a few cycles
    assert a.arrive_cycle is not None and b.arrive_cycle is not None
    assert abs(a.arrive_cycle - b.arrive_cycle) <= 4


def test_ejection_bandwidth_limits_sink_rate():
    stats = Stats()
    network = Network(2, stats, ejection_bandwidth=1)
    network.add_channel(chain_spec(0, 1, bandwidth=4, delay=1))
    network.set_routing(forward_routing)
    network.finalize()
    packet = Packet(0, 1, 12, 0)
    network.inject(packet)
    run_cycles(network, 60)
    # 12 flits at 1 flit/cycle ejection: tail no earlier than cycle 13.
    assert packet.arrive_cycle >= 13


def test_credit_return_frees_upstream():
    network, _ = build_chain(3, bandwidth=2, delay=1, buffer_depth=16)
    router0 = network.routers[0]
    out = router0.outputs[1]
    initial = out.credits[0] + out.credits[1]
    for _ in range(4):
        network.inject(Packet(0, 2, 8, 0))
    run_cycles(network, 100)
    # all credits returned once the network drained
    assert out.credits[0] + out.credits[1] == initial


def test_injection_cycle_recorded():
    network, _ = build_chain(2)
    a = Packet(0, 1, 4, 0)
    b = Packet(0, 1, 4, 0)
    network.inject(a)
    network.inject(b)
    run_cycles(network, 30)
    assert a.inject_cycle == 0
    assert b.inject_cycle == 0  # separate injection VCs: both start at once


def test_hetero_budget_respected_by_sa():
    """SA never grants more flits than the hetero link can accept."""
    network, _ = build_chain(
        2, ChannelKind.HETERO_PHY, policy="performance", bandwidth=2,
        serial_bandwidth=4,
    )
    link = network.links[0]
    for _ in range(6):
        network.inject(Packet(0, 1, 16, 0))
    for now in range(200):
        network.stats.now = now
        before = link._accepted_in(now)
        network.step(now)
        accepted = link._accepted_in(now) - before
        assert accepted <= 6
    assert network.buffered_flits() == 0
