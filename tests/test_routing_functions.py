"""Tests for the per-family routing functions (Algorithm 1 structure)."""

import pytest

from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.routing.functions import (
    HeteroChannelRouting,
    HypercubeRouting,
    MeshRouting,
    TorusRouting,
    make_routing,
)
from repro.routing.policies import CUBE, MESH, FixedSelector, HopCountSelector
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid

from .conftest import make_network


def probe(src: int, dst: int, **kwargs) -> Packet:
    return Packet(src, dst, 16, 0, **kwargs)


def candidates_at(network, node, dst, **kwargs):
    router = network.routers[node]
    return router.routing_fn(router, probe(node, dst, **kwargs))


def link_of(network, node, candidate):
    port = candidate[0]
    return network.routers[node].outputs[port].link


def test_eject_candidate_at_destination(config, small_grid, family):
    _, network, _ = make_network(family, small_grid, config)
    cands = candidates_at(network, 5, 5) if False else None
    # routing functions are only called for dst != node via probe src != dst;
    # ejection is signalled by port 0:
    router = network.routers[5]
    packet = probe(4, 5)
    result = router.routing_fn(network.routers[5], packet)
    assert result == [(0, 0, True)]


def test_candidates_reference_real_ports(config, small_grid, family):
    _, network, _ = make_network(family, small_grid, config)
    n = small_grid.n_nodes
    for node in range(0, n, 5):
        for dst in range(0, n, 7):
            if node == dst:
                continue
            for port, vc, _esc in candidates_at(network, node, dst):
                out = network.routers[node].outputs[port]
                assert out.link is not None
                assert 0 <= vc < out.n_vcs


def test_every_pair_has_escape_candidate(config, small_grid, family):
    _, network, _ = make_network(family, small_grid, config)
    n = small_grid.n_nodes
    for node in range(n):
        for dst in range(n):
            if node == dst:
                continue
            cands = candidates_at(network, node, dst)
            assert any(esc for _p, _v, esc in cands), (node, dst)


def test_mesh_escape_moves_reduce_distance(config, small_grid):
    spec, network, _ = make_network("parallel_mesh", small_grid, config)
    grid = small_grid
    for node in range(grid.n_nodes):
        for dst in range(grid.n_nodes):
            if node == dst:
                continue
            for port, _vc, esc in candidates_at(network, node, dst):
                link = link_of(network, node, (port, 0, esc))
                nxt = link.dst_router.node
                d_now = sum(
                    abs(a - b) for a, b in zip(grid.coords(node), grid.coords(dst))
                )
                d_next = sum(
                    abs(a - b) for a, b in zip(grid.coords(nxt), grid.coords(dst))
                )
                assert d_next == d_now - 1  # mesh candidates are minimal


def test_banned_packet_restricted_to_escape_directions(config, small_grid):
    _, network, _ = make_network("parallel_mesh", small_grid, config)
    free = candidates_at(network, 0, 35)
    banned_packet = probe(0, 35)
    banned_packet.adaptive_banned = True
    router = network.routers[0]
    banned = router.routing_fn(router, banned_packet)
    banned_ports = {port for port, _v, _e in banned}
    free_escape_ports = {port for port, _v, esc in free if esc}
    assert banned_ports == free_escape_ports


def test_torus_uses_wrap_for_far_pairs(config):
    grid = ChipletGrid(4, 4, 2, 2)  # width 8: wraps pay off at distance >= ~6
    _, network, _ = make_network("serial_torus", grid, config)
    node = grid.node_at(0, 0)
    dst = grid.node_at(7, 0)
    cands = candidates_at(network, node, dst)
    kinds = {link_of(network, node, c).spec.tag[0] for c in cands if not c[2]}
    assert "wrap" in kinds


def test_torus_escape_never_uses_wrap(config):
    grid = ChipletGrid(4, 4, 2, 2)
    _, network, _ = make_network("serial_torus", grid, config)
    for node in range(0, grid.n_nodes, 3):
        for dst in range(0, grid.n_nodes, 5):
            if node == dst:
                continue
            for cand in candidates_at(network, node, dst):
                if cand[2]:
                    tag = link_of(network, node, cand).spec.tag
                    assert tag[0] == "mesh"
                    assert cand[1] == 0  # escape is VC0


def test_hypercube_phase_vcs(config):
    grid = ChipletGrid(2, 2, 3, 3)
    spec, network, _ = make_network("serial_hypercube", grid, config)
    # source chiplet 3 (0b11) -> chiplet 0: both dims are minus moves.
    src = grid.node_of(3, 1, 1)
    dst = grid.node_of(0, 1, 1)
    for cand in candidates_at(network, src, dst):
        if cand[2]:
            assert cand[1] == HypercubeRouting.MINUS_VC
    # chiplet 0 -> chiplet 3: both dims are plus moves.
    for cand in candidates_at(network, dst, src):
        if cand[2]:
            assert cand[1] == HypercubeRouting.PLUS_VC


def test_hypercube_requires_two_vcs():
    config = SimConfig(n_vcs=1)
    grid = ChipletGrid(2, 2, 3, 3)
    from repro.topology.system import build_system

    spec = build_system("serial_hypercube", grid, config)
    with pytest.raises(ValueError, match="virtual channels"):
        HypercubeRouting(spec)


def test_hetero_channel_subnet_choice_sticky(config):
    grid = ChipletGrid(4, 4, 2, 2)
    spec, network, _ = make_network("hetero_channel", grid, config)
    src = grid.node_of(0, 0, 0)
    dst = grid.node_of(15, 1, 1)  # H_P = 6 > H_S = 4 -> cube
    packet = probe(src, dst)
    router = network.routers[src]
    router.routing_fn(router, packet)
    assert packet.subnet_choice == CUBE


def test_hetero_channel_mesh_for_adjacent_chiplets(config):
    grid = ChipletGrid(4, 4, 2, 2)
    spec, network, _ = make_network("hetero_channel", grid, config)
    src = grid.node_of(0, 0, 0)
    dst = grid.node_of(1, 1, 1)  # adjacent chiplet: H_P = 1 <= H_S
    packet = probe(src, dst)
    router = network.routers[src]
    router.routing_fn(router, packet)
    assert packet.subnet_choice == MESH


def test_hetero_channel_serial_candidates_all_vcs(config):
    grid = ChipletGrid(4, 4, 2, 2)
    spec, network, _ = make_network("hetero_channel", grid, config)
    # Find a node hosting a cube link and a far destination needing it.
    from repro.routing.cube_moves import CubeHostIndex

    index = CubeHostIndex(spec)
    host = spec.cube_hosts[0][0][0]
    dst = grid.node_of(15, 0, 0)
    packet = probe(host, dst)
    router = network.routers[host]
    cands = router.routing_fn(router, packet)
    serial_vcs = {
        vc
        for port, vc, esc in cands
        if not esc and link_of(network, host, (port, vc, esc)).spec.kind is ChannelKind.SERIAL
    }
    if packet.subnet_choice == CUBE and serial_vcs:
        assert serial_vcs == set(range(config.n_vcs))  # Algorithm 1 line 8


def test_fixed_selector_exclusive_modes():
    assert FixedSelector(MESH).select(0, 5) == MESH
    assert FixedSelector(CUBE).select(0, 5) == CUBE
    with pytest.raises(ValueError):
        FixedSelector("ring")


def test_hop_count_selector_eq5():
    grid = ChipletGrid(4, 4, 2, 2)
    selector = HopCountSelector(grid)
    assert selector.select(0, 15) == CUBE  # H_P=6 > H_S=4
    assert selector.select(0, 1) == MESH  # H_P=1, H_S=1
    assert selector.select(0, 0) == MESH


def test_make_routing_dispatch(config, small_grid):
    from repro.topology.system import build_system

    for family, cls in [
        ("parallel_mesh", MeshRouting),
        ("serial_torus", TorusRouting),
        ("hetero_phy_torus", TorusRouting),
        ("serial_hypercube", HypercubeRouting),
        ("hetero_channel", HeteroChannelRouting),
    ]:
        spec = build_system(family, small_grid, config)
        assert isinstance(make_routing(spec), cls)
