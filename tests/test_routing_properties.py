"""Property-based tests over routing functions and random geometries.

Hypothesis draws random grids and node pairs, and checks structural
invariants that every family's routing function must satisfy: candidates
point at real channels, escape candidates exist for every pair, and
greedy escape-following terminates at the destination (connectivity of
R0, the first half of Lemma 1, checked constructively).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.flit import Packet
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system

CONFIG = SimConfig()

# Small random geometries; hypercube families need power-of-two chiplets.
mesh_grids = st.builds(
    ChipletGrid,
    st.integers(1, 3),
    st.integers(1, 3),
    st.integers(2, 4),
    st.integers(2, 4),
)
cube_grids = st.sampled_from(
    [ChipletGrid(2, 1, 2, 2), ChipletGrid(2, 2, 2, 3), ChipletGrid(4, 2, 3, 2)]
)

_network_cache: dict = {}


def network_for(family: str, grid: ChipletGrid):
    key = (family, grid)
    if key not in _network_cache:
        spec = build_system(family, grid, CONFIG)
        _network_cache[key] = build_network(spec, Stats())
    return _network_cache[key]


def follow_escape(network, src: int, dst: int, limit: int = 500) -> int:
    """Greedily follow the first escape candidate; return the end node."""
    node = src
    for _ in range(limit):
        if node == dst:
            return node
        router = network.routers[node]
        candidates = router.routing_fn(router, Packet(node, dst, 1, 0))
        escapes = [c for c in candidates if c[2]]
        assert escapes, f"no escape candidate at {node} for {dst}"
        port = escapes[0][0]
        link = router.outputs[port].link
        assert link is not None
        node = link.dst_router.node
    return node


@settings(max_examples=30, deadline=None)
@given(mesh_grids, st.data())
@pytest.mark.parametrize("family", ["parallel_mesh", "serial_torus", "hetero_phy_torus"])
def test_escape_following_reaches_destination_mesh_families(family, grid, data):
    network = network_for(family, grid)
    n = grid.n_nodes
    src = data.draw(st.integers(0, n - 1))
    dst = data.draw(st.integers(0, n - 1))
    if src == dst:
        return
    assert follow_escape(network, src, dst) == dst


@settings(max_examples=30, deadline=None)
@given(cube_grids, st.data())
@pytest.mark.parametrize("family", ["serial_hypercube", "hetero_channel"])
def test_escape_following_reaches_destination_cube_families(family, grid, data):
    network = network_for(family, grid)
    n = grid.n_nodes
    src = data.draw(st.integers(0, n - 1))
    dst = data.draw(st.integers(0, n - 1))
    if src == dst:
        return
    assert follow_escape(network, src, dst) == dst


@settings(max_examples=20, deadline=None)
@given(mesh_grids, st.data())
def test_candidates_are_well_formed(grid, data):
    network = network_for("hetero_phy_torus", grid)
    n = grid.n_nodes
    src = data.draw(st.integers(0, n - 1))
    dst = data.draw(st.integers(0, n - 1))
    if src == dst:
        return
    router = network.routers[src]
    for port, vc, escape in router.routing_fn(router, Packet(src, dst, 1, 0)):
        assert 0 <= port < len(router.outputs)
        out = router.outputs[port]
        assert 0 <= vc < out.n_vcs
        assert isinstance(escape, bool)


@settings(max_examples=20, deadline=None)
@given(cube_grids, st.data())
def test_hetero_channel_candidates_unique(grid, data):
    """No duplicate (port, vc) pairs in a candidate set."""
    network = network_for("hetero_channel", grid)
    n = grid.n_nodes
    src = data.draw(st.integers(0, n - 1))
    dst = data.draw(st.integers(0, n - 1))
    if src == dst:
        return
    router = network.routers[src]
    candidates = router.routing_fn(router, Packet(src, dst, 1, 0))
    pairs = [(p, v) for p, v, _e in candidates]
    assert len(pairs) == len(set(pairs))
