"""Tests for the append-only run registry (``repro.telemetry.runstore``)."""

import json

import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.telemetry.runstore import (
    RUN_SCHEMA_VERSION,
    RunRecord,
    RunStore,
    RunStoreError,
    config_digest,
    new_run_id,
    record_from_result,
    system_digest,
    utc_now_iso,
)
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system


def make_record(**overrides) -> RunRecord:
    data = dict(
        run_id=new_run_id(),
        created=utc_now_iso(),
        kind="simulate",
        label="hetero_phy_torus",
        scale="tiny",
        seed=7,
        config_hash="abc123def456",
        git_rev="0000000",
        workload="uniform@0.1",
        policy="performance",
        n_nodes=36,
        cycles=2_000,
        wall_seconds=0.5,
        cycles_per_second=4_000.0,
        stats={"avg_latency": 21.5, "delivered_fraction": 0.99},
        artifacts={"trace": "run.json"},
        extras={"rows": 4.0},
    )
    data.update(overrides)
    return RunRecord(**data)


# -- JSONL round-trip --------------------------------------------------------
def test_append_load_roundtrip(tmp_path):
    store = RunStore(tmp_path / "runs")
    first, second = make_record(), make_record(label="second")
    path = store.append(first)
    store.append(second)
    assert path == tmp_path / "runs" / "runs.jsonl"
    loaded = store.load()
    assert loaded == [first, second]
    assert len(store) == 2
    # Append-only: a re-opened store sees the same records plus new ones.
    reopened = RunStore(tmp_path / "runs")
    reopened.append(make_record(label="third"))
    assert [r.label for r in reopened.load()] == [
        "hetero_phy_torus", "second", "third",
    ]


def test_empty_or_missing_store(tmp_path):
    store = RunStore(tmp_path / "never-written")
    assert store.load() == []
    assert store.latest(5) == []
    assert len(store) == 0


def test_latest_returns_newest_oldest_first(tmp_path):
    store = RunStore(tmp_path)
    for index in range(5):
        store.append(make_record(label=f"run{index}"))
    assert [r.label for r in store.latest(2)] == ["run3", "run4"]
    assert store.latest(0) == []


# -- schema enforcement ------------------------------------------------------
def test_foreign_schema_version_rejected(tmp_path):
    record = make_record()
    data = record.to_dict()
    data["schema_version"] = RUN_SCHEMA_VERSION + 1
    store = RunStore(tmp_path)
    store.directory.mkdir(exist_ok=True)
    store.path.write_text(json.dumps(data) + "\n")
    with pytest.raises(RunStoreError, match="schema"):
        store.load()
    with pytest.raises(RunStoreError, match="not supported"):
        RunRecord.from_dict(data)


def test_unknown_fields_rejected():
    data = make_record().to_dict()
    data["surprise"] = 1
    with pytest.raises(RunStoreError, match="unknown fields"):
        RunRecord.from_dict(data)


def test_corrupt_lines_raise_strict_and_skip_lenient(tmp_path):
    store = RunStore(tmp_path)
    store.append(make_record(label="good"))
    with store.path.open("a") as handle:
        handle.write("{not json\n")
        handle.write('"a bare string"\n')
    store.append(make_record(label="after"))
    with pytest.raises(RunStoreError, match="unreadable"):
        store.load()
    labels = [r.label for r in store.load(strict=False)]
    assert labels == ["good", "after"]


# -- digests -----------------------------------------------------------------
def test_config_digest_is_stable_and_order_insensitive():
    a = config_digest({"x": 1, "y": [2, 3]})
    b = config_digest({"y": [2, 3], "x": 1})
    assert a == b
    assert len(a) == 12
    assert a != config_digest({"x": 1, "y": [2, 4]})


def test_system_digest_covers_workload_and_policy():
    grid = ChipletGrid(2, 2, 2, 2)
    spec = build_system("parallel_mesh", grid, SimConfig().scaled(500))
    base = system_digest(spec, workload="uniform@0.1", policy="performance")
    assert base == system_digest(spec, workload="uniform@0.1", policy="performance")
    assert base != system_digest(spec, workload="uniform@0.2", policy="performance")
    assert base != system_digest(spec, workload="uniform@0.1", policy="balanced")


# -- integration with RunResult ----------------------------------------------
def test_record_from_real_run(tmp_path):
    grid = ChipletGrid(2, 2, 2, 2)
    spec = build_system("parallel_mesh", grid, SimConfig().scaled(600))
    result = run_synthetic(spec, "uniform", 0.1, seed=3)
    assert result.wall_seconds > 0
    assert result.cycles_per_second > 0
    assert len(result.config_hash) == 12

    record = record_from_result(
        result, kind="simulate", scale="tiny", git_rev="cafef00d",
        artifacts={"trace": "t.json"},
    )
    assert record.schema_version == RUN_SCHEMA_VERSION
    assert record.label == result.system
    assert record.seed == 3
    assert record.config_hash == result.config_hash
    assert record.stats["avg_latency"] == result.avg_latency
    assert record.artifacts == {"trace": "t.json"}

    store = RunStore(tmp_path)
    store.append(record)
    assert store.load() == [record]


def test_breakdown_roundtrips_and_old_records_load(tmp_path):
    store = RunStore(tmp_path / "runs")
    breakdown = {
        "packets": 7,
        "avg_latency": 21.5,
        "stages": {"switch_wait": {"total": 70, "share": 1.0, "mean": 10.0,
                                   "p50": 10, "p95": 12, "p99": 14}},
        "bottleneck_links": [{"link": 0, "src": 0, "dst": 1, "kind": "onchip",
                              "queue_cycles": 70, "stall_cycles": 3,
                              "packets": 7}],
    }
    store.append(make_record(label="with", breakdown=breakdown))
    # A record written before the field existed: same schema, no key.
    old = make_record(label="without").to_dict()
    del old["breakdown"]
    with store.path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(old) + "\n")

    loaded = store.load()
    assert loaded[0].breakdown == breakdown
    assert loaded[1].breakdown == {}  # default for pre-breakdown records


def test_record_from_result_captures_ledger_breakdown(tmp_path):
    from repro.telemetry import TelemetryConfig

    grid = ChipletGrid(2, 2, 2, 2)
    spec = build_system("parallel_mesh", grid, SimConfig().scaled(600))
    plain = run_synthetic(spec, "uniform", 0.1, seed=3)
    assert record_from_result(plain, git_rev="x").breakdown == {}

    result = run_synthetic(
        spec, "uniform", 0.1, seed=3,
        telemetry=TelemetryConfig(latency_breakdown=True),
    )
    record = record_from_result(result, git_rev="x")
    assert record.breakdown["packets"] == result.stats.packets_delivered
    assert set(record.breakdown) == {
        "packets", "avg_latency", "stages", "bottleneck_links",
    }
    store = RunStore(tmp_path)
    store.append(record)
    assert store.load() == [record]


def test_corrupt_lines_at_head_middle_tail_counted_lenient(tmp_path):
    store = RunStore(tmp_path)
    store.directory.mkdir(parents=True, exist_ok=True)
    good = [json.dumps(make_record(label=f"ok{i}").to_dict()) for i in range(4)]
    lines = ["{corrupt head", good[0], good[1], "not json at all",
             good[2], good[3], '["corrupt", "tail"]']
    store.path.write_text("\n".join(lines) + "\n")

    with pytest.raises(RunStoreError, match="runs.jsonl:1"):
        store.load()  # strict mode names the first bad line
    labels = [r.label for r in store.load(strict=False)]
    assert labels == ["ok0", "ok1", "ok2", "ok3"]
    assert store.skipped == 3  # head + middle + tail


def test_runstore_loads_5k_records_within_budget(tmp_path):
    import time

    store = RunStore(tmp_path)
    store.directory.mkdir(parents=True, exist_ok=True)
    with store.path.open("w", encoding="utf-8") as handle:
        for index in range(5_000):
            record = make_record(run_id=f"r{index:05d}", created="2026-01-01T00:00:00+00:00")
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    start = time.perf_counter()
    records = store.load(strict=False)
    elapsed = time.perf_counter() - start
    assert len(records) == 5_000
    assert store.skipped == 0
    # Generous CI budget: the registry must stay cheap to scan even when
    # a long-lived checkout has accumulated thousands of runs.
    assert elapsed < 5.0, f"5k-record load took {elapsed:.2f}s"


def test_older_schema_records_feed_status_and_sentinel(tmp_path):
    """Records written before bench/mem/digest fields existed still flow
    through every consumer: the store, the sentinel history and the
    fleet view's ``feed_status``."""
    store = RunStore(tmp_path / "runs")
    old = make_record(
        kind="bench", created="2026-01-01T00:00:00+00:00",
        bench={"fig11": {"cps_median": 4_000.0}},  # pre-mem, pre-digest
    ).to_dict()
    for newer_field in ("breakdown", "forensics", "digest"):
        del old[newer_field]
    store.directory.mkdir(parents=True, exist_ok=True)
    store.path.write_text(json.dumps(old) + "\n")

    [record] = store.load()
    assert record.breakdown == {} and record.digest == {}

    from repro.telemetry.history import load_history
    from repro.telemetry.sentinel import analyze_history

    report = analyze_history(load_history(tmp_path / "runs"))
    verdicts = {r.metric: r.verdict for r in report.reports}
    assert verdicts["mem.peak_bytes"] == "n/a"
    assert verdicts["digest.stable"] == "n/a"
    assert report.regressions() == []

    from repro.telemetry.live import feed_status

    # A minimal old-style feed: only the fields the first schema wrote.
    status = feed_status([{"kind": "start", "run_id": "old-run", "cycle": 0}])
    assert status["run_id"] == "old-run"
    assert status["digest"] is None and status["bundle"] is None


def test_lenient_load_counts_skipped_lines(tmp_path):
    store = RunStore(tmp_path)
    store.append(make_record(label="good"))
    foreign = make_record().to_dict()
    foreign["schema_version"] = RUN_SCHEMA_VERSION + 1
    with store.path.open("a") as handle:
        handle.write("{not json\n")
        handle.write(json.dumps(foreign) + "\n")
    store.append(make_record(label="after"))

    assert store.skipped == 0  # untouched until a lenient read runs
    records = store.load(strict=False)
    assert [r.label for r in records] == ["good", "after"]
    assert store.skipped == 2  # the corrupt line and the foreign schema
    # The counter is per-read, not cumulative across reads.
    store.load(strict=False)
    assert store.skipped == 2
