"""Runtime invariant sanitizer: clean runs stay silent, faults are caught.

Positive direction: every system family simulates under the checker with
zero findings (credit conservation, buffer bounds, wormhole ordering,
flit conservation all hold cycle by cycle).  Negative direction: a stub
link that leaks one credit, a dropped flit, an out-of-order delivery and
a genuine routing deadlock must each raise the matching
:class:`InvariantViolation`.
"""

import pytest

from repro.analysis import InvariantChecker, InvariantViolation
from repro.noc.flit import Packet
from repro.noc.link import PipelinedLink
from repro.noc.network import Network
from repro.routing.functions import make_routing
from repro.sim.build import build_network, routing_cost_model
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic import SyntheticWorkload
from repro.traffic.patterns import make_pattern

from .conftest import make_network


def _run(network, stats, grid, config, *, cycles=800, rate=0.1, seed=7):
    pattern = make_pattern("uniform", grid.n_nodes)
    workload = SyntheticWorkload(
        pattern, grid.n_nodes, rate, config.packet_length, seed=seed
    )
    engine = Engine(network, workload, stats, deadlock_threshold=None)
    engine.run(cycles)
    return engine


# -- positive: all families run clean under the sanitizer ---------------------


def test_family_runs_clean_under_sanitizer(family, sanitize):
    config = SimConfig(sim_cycles=1_000, warmup_cycles=100)
    grid = ChipletGrid(2, 2, 3, 3)
    spec, network, stats = make_network(family, grid, config)
    checker = sanitize(network)
    _run(network, stats, grid, config)
    assert checker.checks_run == 800
    assert checker.flits_injected > 0


def test_sanitizer_check_every_reduces_sweeps(sanitize):
    config = SimConfig(sim_cycles=1_000, warmup_cycles=100)
    grid = ChipletGrid(2, 1, 2, 2)
    spec, network, stats = make_network("parallel_mesh", grid, config)
    checker = sanitize(network, check_every=10)
    _run(network, stats, grid, config, cycles=500)
    assert checker.checks_run == 50


def test_sanitizer_rejects_bad_check_every():
    config = SimConfig()
    _, network, _ = make_network("parallel_mesh", ChipletGrid(2, 1, 2, 2), config)
    with pytest.raises(ValueError):
        InvariantChecker(network, check_every=0)


# -- negative: injected faults must be caught ---------------------------------


class _CreditLeakLink(PipelinedLink):
    """Drops exactly one credit return, once — a classic flow-control bug."""

    def __init__(self, spec):
        super().__init__(spec)
        self._leaked = False

    def return_credit(self, vc, now):
        if not self._leaked:
            self._leaked = True
            return
        super().return_credit(vc, now)


def test_credit_leaking_link_is_flagged():
    config = SimConfig(sim_cycles=500, warmup_cycles=0)
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system("parallel_mesh", grid, config)
    stats = Stats()
    network = Network(
        grid.n_nodes,
        stats,
        injection_vcs=config.injection_vcs,
        ejection_bandwidth=config.ejection_bandwidth,
    )
    for channel in spec.channels:
        network.add_channel(channel, _CreditLeakLink)
    network.set_routing(make_routing(spec, cost_model=routing_cost_model(spec)))
    network.finalize()
    checker = InvariantChecker(network)
    with pytest.raises(InvariantViolation) as excinfo:
        _run(network, stats, grid, config, cycles=500)
    assert excinfo.value.code == "CREDIT-LEAK"
    assert "lost" in str(excinfo.value)


def test_dropped_flit_breaks_conservation():
    config = SimConfig(sim_cycles=500, warmup_cycles=0)
    grid = ChipletGrid(2, 1, 2, 2)
    spec, network, stats = make_network("parallel_mesh", grid, config)
    checker = InvariantChecker(network)
    packet = Packet(0, grid.n_nodes - 1, length=4, create_cycle=0)
    network.inject(packet)
    # Lose one flit straight out of the source queue (the injection port
    # has no credit loop, so only conservation can notice).
    network.routers[0].inputs[0].vcs[0].queue.pop()
    with pytest.raises(InvariantViolation) as excinfo:
        network.step(0)
    assert excinfo.value.code == "FLIT-CONSERVATION"


def test_out_of_order_delivery_is_flagged():
    config = SimConfig()
    grid = ChipletGrid(2, 1, 2, 2)
    spec, network, stats = make_network("parallel_mesh", grid, config)
    InvariantChecker(network)
    packet = Packet(0, 1, length=2, create_cycle=0)
    head, tail = packet.make_flits()
    router = network.routers[1]
    with pytest.raises(InvariantViolation) as excinfo:
        router.receive_flit(1, 0, tail, 0)  # body/tail before any head
    assert excinfo.value.code == "VC-ORDER"

    # Interleaving a foreign head mid-packet is equally illegal.
    router.receive_flit(1, 0, head, 0)
    other = Packet(0, 1, length=2, create_cycle=0)
    other_head, _ = other.make_flits()
    with pytest.raises(InvariantViolation) as excinfo:
        router.receive_flit(1, 0, other_head, 0)
    assert excinfo.value.code == "VC-ORDER"


def test_buffer_overflow_is_flagged():
    config = SimConfig()
    grid = ChipletGrid(2, 1, 2, 2)
    spec, network, stats = make_network("parallel_mesh", grid, config)
    InvariantChecker(network)
    router = network.routers[1]
    depth = router.inputs[1].buffer_depth
    with pytest.raises(InvariantViolation) as excinfo:
        for i in range(depth + 1):
            flit = Packet(0, 1, length=1, create_cycle=0).make_flits()[0]
            router.receive_flit(1, 0, flit, 0)
    assert excinfo.value.code == "BUF-OVERFLOW"


def test_watchdog_catches_runtime_deadlock():
    """Eastward ring routing on a torus row deadlocks under load; the
    no-progress watchdog must catch it (instead of a silent hang)."""
    config = SimConfig(sim_cycles=4_000, warmup_cycles=0)
    grid = ChipletGrid(2, 1, 2, 2)
    spec = build_system("serial_torus", grid, config)

    def ring_routing(router, packet):
        if packet.dst == router.node:
            return [(0, 0, True)]
        by_tag = router.out_port_by_tag
        port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
        if port is None:
            port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
        return [(port, 0, True)]

    stats = Stats()
    network = build_network(spec, stats, routing=ring_routing)
    InvariantChecker(network, deadlock_threshold=300)
    with pytest.raises(InvariantViolation) as excinfo:
        _run(network, stats, grid, config, cycles=4_000, rate=1.0, seed=3)
    assert excinfo.value.code == "NO-PROGRESS"


def test_watchdog_disabled_with_none_threshold():
    config = SimConfig(sim_cycles=1_000, warmup_cycles=0)
    grid = ChipletGrid(2, 1, 2, 2)
    spec, network, stats = make_network("parallel_mesh", grid, config)
    checker = InvariantChecker(network, deadlock_threshold=None)
    _run(network, stats, grid, config, cycles=300, rate=0.0)  # idle network
    assert checker.checks_run == 300
