"""Tests for hetero-PHY dispatch policies (Sec 5.3)."""

import pytest

from repro.core.scheduling import (
    PARALLEL,
    SERIAL,
    ApplicationAwarePolicy,
    BalancedPolicy,
    EnergyEfficientPolicy,
    PerformanceFirstPolicy,
    make_dispatch_policy,
)
from repro.noc.flit import Packet
from repro.sim.config import SimConfig


def flit(priority=0, msg_class="data"):
    return Packet(0, 1, 1, 0, priority=priority, msg_class=msg_class).make_flits()[0]


def test_performance_first_prefers_parallel():
    policy = PerformanceFirstPolicy()
    assert policy.choose_phy(flit(), 1, par_free=2, ser_free=4) == PARALLEL


def test_performance_first_falls_to_serial():
    policy = PerformanceFirstPolicy()
    assert policy.choose_phy(flit(), 1, par_free=0, ser_free=4) == SERIAL


def test_performance_first_stalls_when_both_busy():
    policy = PerformanceFirstPolicy()
    assert policy.choose_phy(flit(), 1, par_free=0, ser_free=0) is None


def test_energy_efficient_never_serial():
    policy = EnergyEfficientPolicy()
    assert policy.choose_phy(flit(), 100, par_free=0, ser_free=4) is None
    assert policy.choose_phy(flit(), 100, par_free=1, ser_free=4) == PARALLEL
    assert not policy.bypass_enabled


def test_balanced_threshold_gates_serial():
    policy = BalancedPolicy(threshold=8)
    # Below threshold: parallel only.
    assert policy.choose_phy(flit(), 7, par_free=0, ser_free=4) is None
    # At/above threshold: serial joins in.
    assert policy.choose_phy(flit(), 8, par_free=0, ser_free=4) == SERIAL
    # Parallel still preferred when free.
    assert policy.choose_phy(flit(), 8, par_free=1, ser_free=4) == PARALLEL


def test_balanced_threshold_validation():
    with pytest.raises(ValueError):
        BalancedPolicy(threshold=0)


def test_application_aware_priority_waits_for_parallel():
    policy = ApplicationAwarePolicy()
    urgent = flit(priority=2)
    assert policy.choose_phy(urgent, 0, par_free=1, ser_free=4) == PARALLEL
    # High priority never takes the slow PHY, even if it must wait.
    assert policy.choose_phy(urgent, 0, par_free=0, ser_free=4) is None


def test_application_aware_bulk_prefers_serial():
    policy = ApplicationAwarePolicy()
    bulk = flit(msg_class="bulk")
    assert policy.choose_phy(bulk, 0, par_free=2, ser_free=4) == SERIAL
    assert policy.choose_phy(bulk, 0, par_free=2, ser_free=0) == PARALLEL
    assert policy.choose_phy(bulk, 0, par_free=0, ser_free=0) is None


def test_application_aware_delegates_default_traffic():
    policy = ApplicationAwarePolicy(EnergyEfficientPolicy())
    assert policy.choose_phy(flit(), 50, par_free=0, ser_free=4) is None
    assert not policy.bypass_enabled


def test_make_dispatch_policy_names():
    config = SimConfig()
    assert isinstance(make_dispatch_policy("performance", config), PerformanceFirstPolicy)
    assert isinstance(make_dispatch_policy("energy_efficient", config), EnergyEfficientPolicy)
    balanced = make_dispatch_policy("balanced", config)
    assert isinstance(balanced, BalancedPolicy)
    assert balanced.threshold == config.tx_fifo_depth // 2
    assert isinstance(make_dispatch_policy("application_aware", config), ApplicationAwarePolicy)


def test_make_dispatch_policy_unknown():
    with pytest.raises(ValueError):
        make_dispatch_policy("bogus", SimConfig())


def test_passive_aware_short_packets_parallel():
    from repro.core.scheduling import PassiveApplicationAwarePolicy

    policy = PassiveApplicationAwarePolicy(short_threshold=2)
    short = flit()  # 1-flit packet
    assert policy.choose_phy(short, 0, par_free=2, ser_free=4) == PARALLEL
    assert policy.choose_phy(short, 0, par_free=0, ser_free=4) == SERIAL  # no stall


def test_passive_aware_long_packets_serial():
    from repro.core.scheduling import PassiveApplicationAwarePolicy
    from repro.noc.flit import Packet

    policy = PassiveApplicationAwarePolicy(short_threshold=2)
    long_flit = Packet(0, 1, 16, 0).make_flits()[0]
    assert policy.choose_phy(long_flit, 0, par_free=2, ser_free=4) == SERIAL
    assert policy.choose_phy(long_flit, 0, par_free=2, ser_free=0) == PARALLEL
    assert policy.choose_phy(long_flit, 0, par_free=0, ser_free=0) is None


def test_passive_aware_validation_and_factory():
    from repro.core.scheduling import PassiveApplicationAwarePolicy

    with pytest.raises(ValueError):
        PassiveApplicationAwarePolicy(short_threshold=0)
    policy = make_dispatch_policy("passive_aware", SimConfig())
    assert isinstance(policy, PassiveApplicationAwarePolicy)
