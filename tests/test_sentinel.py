"""Tests for the regression sentinel (``repro.telemetry.sentinel`` /
``repro.telemetry.history``)."""

import json
import math

import pytest

from benchmarks.make_registry_seed import make_records, write_registry
from repro.telemetry.history import MetricSeries, SeriesPoint, load_history
from repro.telemetry.runstore import RUN_SCHEMA_VERSION, RunStore
from repro.telemetry.sentinel import (
    SENTINEL_SCHEMA_VERSION,
    SentinelConfig,
    analyze_history,
    detect_changepoint,
    render_sentinel,
)

from .test_runstore import make_record


def series_of(values, metric="cycles_per_second", higher=True, aux=False):
    points = [
        SeriesPoint(f"run-{i:03d}", f"2026-01-01T00:{i:02d}:00+00:00", "rev", "cfg", v)
        for i, v in enumerate(values)
    ]
    return MetricSeries("case", metric, higher_is_better=higher, points=points,
                        auxiliary=aux)


# -- the detector ------------------------------------------------------------
def test_detector_finds_a_clean_step():
    values = [100.0] * 12 + [80.0] * 12
    cp = detect_changepoint(values)
    assert cp is not None
    assert cp.index == 12
    assert cp.effect == 1.0
    assert cp.shift == pytest.approx(-20.0)


def test_detector_ignores_noise_within_the_band():
    # ±2% jitter around a flat level: under the 5% relative floor.
    values = [100.0 + 2.0 * ((-1) ** i) for i in range(24)]
    assert detect_changepoint(values) is None


def test_detector_rank_gate_resists_single_outliers():
    # One wild spike must not fake a step: the rank effect of a
    # one-point excursion never clears min_effect.
    values = [100.0] * 10 + [500.0] + [100.0] * 10
    assert detect_changepoint(values) is None


def test_detector_skips_nan_but_reports_original_index():
    values = [100.0, float("nan"), 100.0, 100.0, float("nan"), 100.0,
              80.0, 80.0, 80.0, float("nan"), 80.0, 80.0, 80.0]
    cp = detect_changepoint(values, SentinelConfig(window=4, min_segment=2))
    assert cp is not None
    assert values[cp.index] == 80.0
    assert cp.index == 6  # original-series coordinates, not finite-subsequence


def test_detector_needs_min_segment_on_both_sides():
    assert detect_changepoint([100.0, 80.0], SentinelConfig()) is None


def test_config_validation():
    with pytest.raises(ValueError, match="min_segment"):
        SentinelConfig(window=2, min_segment=2)
        SentinelConfig(min_segment=1)
    with pytest.raises(ValueError, match="min_effect"):
        SentinelConfig(min_effect=0.0)


# -- verdicts ----------------------------------------------------------------
def history_with(*series):
    from repro.telemetry.history import RunHistory

    history = RunHistory(runs=max((len(s.points) for s in series), default=0))
    for s in series:
        history.series[(s.case, s.metric)] = s
    return history


def test_verdicts_for_step_and_recovery():
    stepped = history_with(series_of([100.0] * 10 + [80.0] * 10))
    [report] = analyze_history(stepped).reports
    assert report.verdict == "regressed"
    assert report.changepoint_key == "run-010"
    assert report.rel_shift == pytest.approx(-0.2)

    # The same step, later fixed: the changepoint is still reported but
    # the trailing window sits back at the baseline, so the verdict is ok.
    recovered = history_with(series_of([100.0] * 10 + [80.0] * 10 + [100.0] * 10))
    [report] = analyze_history(recovered).reports
    assert report.verdict == "ok"
    assert report.changepoint is not None


def test_verdict_direction_respects_higher_is_better():
    # Same upward step: an improvement for cps, a regression for ns/cycle.
    up = [100.0] * 10 + [130.0] * 10
    [cps] = analyze_history(history_with(series_of(up))).reports
    [host] = analyze_history(
        history_with(series_of(up, metric="host.rc_va", higher=False))
    ).reports
    assert cps.verdict == "improved"
    assert host.verdict == "regressed"


def test_insufficient_history_and_na_verdicts():
    short = history_with(series_of([100.0] * 3))
    [report] = analyze_history(short).reports
    assert report.verdict == "insufficient-history"

    empty = history_with(series_of([float("nan")] * 10, metric="mem.peak_bytes",
                                   higher=False))
    [report] = analyze_history(empty).reports
    assert report.verdict == "n/a"
    assert report.finite_points == 0


def test_digest_stability_any_zero_regresses():
    flags = [float("nan"), 1.0, 1.0, 0.0, 1.0]
    bad = history_with(series_of(flags, metric="digest.stable"))
    [report] = analyze_history(bad).reports
    assert report.verdict == "regressed"
    assert report.changepoint_key == "run-003"

    good = history_with(series_of([float("nan")] + [1.0] * 4, metric="digest.stable"))
    [report] = analyze_history(good).reports
    assert report.verdict == "ok"


def test_metric_prefix_filter():
    history = history_with(
        series_of([100.0] * 12),
        series_of([5.0] * 12, metric="host.rc_va", higher=False),
        series_of([5.0] * 12, metric="host.sa_st", higher=False),
    )
    report = analyze_history(history, metric_prefixes=["host."])
    assert sorted(r.metric for r in report.reports) == ["host.rc_va", "host.sa_st"]
    assert analyze_history(history, metric_prefixes=["mem."]).reports == []


def test_auxiliary_series_get_no_verdict():
    history = history_with(
        series_of([0.1] * 10 + [0.4] * 10, metric="host.rc_va.share",
                  higher=False, aux=True)
    )
    assert analyze_history(history).reports == []


# -- the synthetic registry end-to-end ---------------------------------------
def test_sentinel_flags_seeded_step_and_names_culprit(tmp_path):
    write_registry(tmp_path / "runs", make_records(step_at=20, culprit="rc_va"))
    history = load_history(tmp_path / "runs")
    assert history.runs == 30
    report = analyze_history(history)
    cps = [r for r in report.reports if r.metric == "cycles_per_second"]
    assert len(cps) == 3  # one per bench case
    for r in cps:
        assert r.verdict == "regressed"
        # The named changepoint run sits within ±2 of the injected step.
        assert abs(int(r.changepoint_key.split("-")[1]) - 20) <= 2
        assert r.culprit.startswith("rc_va")
    text = render_sentinel(report)
    assert "culprit: rc_va" in text
    assert "! regressed" in text


def test_sentinel_passes_noise_only_registry(tmp_path):
    write_registry(tmp_path / "runs", make_records())
    report = analyze_history(load_history(tmp_path / "runs"))
    assert report.regressions() == []
    assert all(r.verdict in ("ok", "n/a") for r in report.reports)


def test_registry_seed_is_deterministic(tmp_path):
    write_registry(tmp_path / "a", make_records(step_at=7, runs=12))
    write_registry(tmp_path / "b", make_records(step_at=7, runs=12))
    assert (tmp_path / "a" / "runs.jsonl").read_bytes() == (
        tmp_path / "b" / "runs.jsonl"
    ).read_bytes()


def test_sentinel_json_report_shape(tmp_path):
    write_registry(tmp_path / "runs", make_records(step_at=20))
    report = analyze_history(load_history(tmp_path / "runs"))
    doc = report.to_json()
    assert doc["schema_version"] == SENTINEL_SCHEMA_VERSION
    assert doc["kind"] == "sentinel"
    assert doc["runs"] == 30 and doc["regressions"] >= 3
    json.dumps(doc)  # NaN-free by construction
    flagged = [r for r in doc["reports"] if r["verdict"] == "regressed"]
    assert all("changepoint" in r for r in flagged)


# -- history loading ---------------------------------------------------------
def test_history_merges_bench_files_over_registry_records(tmp_path):
    from repro.telemetry.bench import write_bench

    from .test_bench_compare import make_bench_doc, make_case

    store = RunStore(tmp_path / "runs")
    # The registry record and the bench file describe the same suite run
    # (same created stamp); the file must win, not double-count.
    store.append(make_record(
        kind="bench", created="2026-01-01T00:00:00+00:00",
        bench={"fig11": {"cps_median": 1_000.0}},
    ))
    bench_dir = tmp_path / "bench"
    write_bench(make_bench_doc(fig11=make_case(cps_median=5_000.0)), bench_dir)

    history = load_history(tmp_path / "runs", bench_dirs=[bench_dir])
    assert history.runs == 1
    series = history.get("fig11", "cycles_per_second")
    assert series.values == [5_000.0]
    assert series.points[0].key == "BENCH_0.json"


def test_history_tolerates_old_records_and_counts_skips(tmp_path):
    store = RunStore(tmp_path / "runs")
    # A pre-mem/pre-digest bench record: only cps_median, no newer keys.
    store.append(make_record(
        kind="bench", created="2026-01-01T00:00:00+00:00",
        bench={"fig11": {"cps_median": 4_000.0}},
    ))
    foreign = make_record(kind="bench").to_dict()
    foreign["schema_version"] = RUN_SCHEMA_VERSION + 1
    with store.path.open("a", encoding="utf-8") as handle:
        handle.write("{corrupt\n")
        handle.write(json.dumps(foreign) + "\n")

    history = load_history(tmp_path / "runs")
    assert history.skipped == 2
    assert history.runs == 1
    assert math.isnan(history.get("fig11", "mem.peak_bytes").values[0])
    assert math.isnan(history.get("fig11", "digest.stable").values[0])
    # The same history analyzes without error: missing metrics read n/a.
    report = analyze_history(history)
    by_metric = {r.metric: r.verdict for r in report.reports}
    assert by_metric["mem.peak_bytes"] == "n/a"

    with pytest.raises(Exception):
        load_history(tmp_path / "runs", strict=True)


def test_history_empty_registry(tmp_path):
    history = load_history(tmp_path / "nowhere")
    assert history.runs == 0 and history.series == {}
    assert analyze_history(history).reports == []
    assert "no bench history" in render_sentinel(analyze_history(history))
