"""Tests for the statistics collector."""

import math

import pytest

from repro.noc.channel import ChannelKind, KIND_IDS
from repro.noc.flit import Packet
from repro.sim.stats import DeadlockError, Stats, percentile


def delivered_packet(create=0, arrive=30, length=4):
    packet = Packet(0, 1, length, create)
    packet.arrive_cycle = arrive
    packet.hops_onchip = 3
    packet.hops_interface = 1
    packet.energy_onchip_pj = 10.0
    packet.energy_interface_pj = 20.0
    return packet


def test_empty_stats_are_nan():
    stats = Stats()
    assert math.isnan(stats.avg_latency)
    assert math.isnan(stats.avg_energy_pj)
    assert math.isnan(stats.latency_variance)
    assert math.isnan(stats.delivered_fraction)
    assert math.isnan(stats.latency_percentile(50))


def test_latency_accounting():
    stats = Stats()
    for arrive in (10, 20, 30):
        packet = delivered_packet(arrive=arrive)
        stats.note_packet_injected(packet)
        stats.note_packet_delivered(packet, arrive)
    assert stats.avg_latency == pytest.approx(20)
    assert stats.latency_variance == pytest.approx(200 / 3)
    assert stats.latency_stddev == pytest.approx(math.sqrt(200 / 3))
    assert stats.packets_delivered == 3
    assert stats.delivered_fraction == pytest.approx(1.0)


def test_warmup_packets_excluded():
    stats = Stats(measure_from=100)
    early = delivered_packet(create=50, arrive=80)
    late = delivered_packet(create=150, arrive=190)
    for packet in (early, late):
        stats.note_packet_injected(packet)
        stats.note_packet_delivered(packet, packet.arrive_cycle)
    assert stats.packets_delivered == 1
    assert stats.measured_injected == 1
    assert stats.avg_latency == pytest.approx(40)


def test_energy_split():
    stats = Stats()
    packet = delivered_packet()
    stats.note_packet_injected(packet)
    stats.note_packet_delivered(packet, packet.arrive_cycle)
    assert stats.avg_energy_onchip_pj == pytest.approx(10)
    assert stats.avg_energy_interface_pj == pytest.approx(20)
    assert stats.avg_energy_pj == pytest.approx(30)
    assert stats.avg_hops == pytest.approx(4)


def test_link_counters_by_kind():
    stats = Stats()
    stats.note_link_flit(KIND_IDS[ChannelKind.SERIAL], 153.6)
    stats.note_link_flit(KIND_IDS[ChannelKind.SERIAL], 153.6)
    stats.note_link_flit(KIND_IDS[ChannelKind.ONCHIP], 6.4)
    assert stats.link_flits[ChannelKind.SERIAL] == 2
    assert stats.link_flits[ChannelKind.ONCHIP] == 1
    assert stats.link_energy_pj[ChannelKind.SERIAL] == pytest.approx(307.2)


def test_percentiles():
    stats = Stats()
    for arrive in range(1, 101):
        packet = delivered_packet(arrive=arrive)
        stats.note_packet_injected(packet)
        stats.note_packet_delivered(packet, arrive)
    assert stats.latency_percentile(50) == pytest.approx(50)
    assert stats.latency_percentile(99) == pytest.approx(99)
    with pytest.raises(ValueError):
        stats.latency_percentile(0)


def test_percentile_bounds_and_single_sample():
    stats = Stats()
    packet = delivered_packet(arrive=37)
    stats.note_packet_injected(packet)
    stats.note_packet_delivered(packet, 37)
    # With n=1, every percentile collapses to the one observation.
    for pct in (0.1, 1, 50, 99, 100):
        assert stats.latency_percentile(pct) == pytest.approx(37)
    for bad in (0, -1, 100.5, 101):
        with pytest.raises(ValueError, match="pct"):
            stats.latency_percentile(bad)


def test_percentile_interpolation_boundaries():
    stats = Stats()
    for arrive in (10, 20):
        packet = delivered_packet(arrive=arrive)
        stats.note_packet_injected(packet)
        stats.note_packet_delivered(packet, arrive)
    # Ceil-rank convention: the 50th percentile of {10, 20} is the first
    # order statistic; anything above 50 moves to the second.
    assert stats.latency_percentile(50) == pytest.approx(10)
    assert stats.latency_percentile(50.1) == pytest.approx(20)
    assert stats.latency_percentile(100) == pytest.approx(20)


def test_percentile_helper_validation_names_offending_value():
    # The module helper backs both Stats.latency_percentile and the
    # latency ledger's aggregates; its error names the bad input.
    for bad in (0, -1, 100.5, 101):
        with pytest.raises(ValueError, match=rf"\(0, 100\], got {bad}"):
            percentile([1, 2, 3], bad)
    with pytest.raises(ValueError, match="got nan"):
        percentile([1, 2, 3], math.nan)
    assert math.isnan(percentile([], 50))


def test_percentile_helper_presorted_skips_sorting():
    values = [30, 10, 20]
    assert percentile(values, 100) == pytest.approx(30)
    # presorted=True trusts the caller's order: the last element wins p100.
    assert percentile(values, 100, presorted=True) == pytest.approx(20)
    assert values == [30, 10, 20]  # never mutated either way


def test_throughput():
    stats = Stats()
    packet = delivered_packet(length=8)
    stats.note_packet_injected(packet)
    stats.note_packet_delivered(packet, 30)
    assert stats.throughput(n_nodes=4, measured_cycles=10) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        stats.throughput(0, 10)


def test_throughput_rejects_nonpositive_windows():
    stats = Stats()
    for n_nodes, cycles in ((0, 10), (-4, 10), (4, 0), (4, -1)):
        with pytest.raises(ValueError, match="positive"):
            stats.throughput(n_nodes, cycles)


def test_progress_tracking():
    stats = Stats()
    stats.now = 42
    stats.note_router_flit()
    assert stats.last_movement_cycle == 42
    assert stats.router_flits == 1


def test_summary_keys():
    stats = Stats()
    summary = stats.summary()
    assert "avg_latency" in summary
    assert "avg_energy_pj" in summary
    assert "p99_latency" in summary


def test_summary_empty_run_is_nan_with_integer_counters():
    summary = Stats().summary()
    assert summary["packets_delivered"] == 0
    assert isinstance(summary["packets_delivered"], int)
    for key, value in summary.items():
        if key != "packets_delivered":
            assert math.isnan(value), key


def test_deadlock_error_message():
    err = DeadlockError(cycle=500, buffered=12, stalled_for=100)
    assert "500" in str(err)
    assert err.buffered == 12
