"""Tests for multi-chiplet system builders."""

import pytest

from repro.noc.channel import ChannelKind
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid
from repro.topology.system import FAMILIES, build_system


@pytest.fixture
def config():
    return SimConfig()


def directed_edges(spec):
    return {(c.src, c.dst) for c in spec.channels}


def test_all_families_build(config):
    grid = ChipletGrid(2, 2, 3, 3)
    for family in FAMILIES:
        spec = build_system(family, grid, config)
        assert spec.family == family
        assert spec.channels


def test_unknown_family_rejected(config):
    with pytest.raises(ValueError):
        build_system("ring", ChipletGrid(2, 2, 2, 2), config)


def test_channels_are_symmetric(config, family):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system(family, grid, config)
    edges = directed_edges(spec)
    assert all((dst, src) in edges for src, dst in edges)


def test_parallel_mesh_channel_counts(config):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system("parallel_mesh", grid, config)
    counts = spec.channels_by_kind()
    # Global 6x6 mesh: 2 * 6 * 5 undirected edges = 120 directed channels.
    assert counts[ChannelKind.ONCHIP] + counts[ChannelKind.PARALLEL] == 120
    # Boundary crossings: 6 per vertical seam + 6 per horizontal = 12
    # undirected -> 24 directed.
    assert counts[ChannelKind.PARALLEL] == 24
    assert ChannelKind.SERIAL not in counts


def test_serial_torus_adds_wraparound(config):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system("serial_torus", grid, config)
    counts = spec.channels_by_kind()
    # 6 rows + 6 columns of wraps, 2 directions each = 24 serial wraps,
    # plus 24 serial boundary channels.
    assert counts[ChannelKind.SERIAL] == 48
    wrap_tags = [c for c in spec.channels if c.tag[0] == "wrap"]
    assert len(wrap_tags) == 24


def test_hetero_phy_torus_kinds(config):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system("hetero_phy_torus", grid, config)
    counts = spec.channels_by_kind()
    assert counts[ChannelKind.HETERO_PHY] == 24  # boundary links bonded
    assert counts[ChannelKind.SERIAL] == 24  # wraps serial-only
    hetero = [c for c in spec.channels if c.kind is ChannelKind.HETERO_PHY]
    assert all(c.serial_phy is not None for c in hetero)
    assert all(c.tag[0] == "mesh" for c in hetero)


def test_hypercube_requires_power_of_two_chiplets(config):
    grid = ChipletGrid(3, 1, 2, 2)
    with pytest.raises(ValueError, match="power-of-two"):
        build_system("serial_hypercube", grid, config)


def test_hypercube_edges_match_hamming(config):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system("serial_hypercube", grid, config)
    assert spec.n_cube_dims == 2
    for channel in spec.channels:
        if channel.tag[0] != "cube":
            continue
        c1 = grid.chiplet_of(channel.src)
        c2 = grid.chiplet_of(channel.dst)
        assert grid.cube_distance(c1, c2) == 1
        assert c1 ^ c2 == 1 << channel.tag[1]


def test_hypercube_hosts_recorded(config):
    grid = ChipletGrid(4, 4, 4, 4)
    spec = build_system("serial_hypercube", grid, config)
    assert spec.n_cube_dims == 4
    assert set(spec.cube_hosts) == set(range(16))
    perimeter = len(grid.perimeter_nodes(0))
    links_per_dim = perimeter // 4
    for by_dim in spec.cube_hosts.values():
        assert set(by_dim) == {0, 1, 2, 3}
        assert all(len(hosts) == links_per_dim for hosts in by_dim.values())


def test_hetero_channel_combines_mesh_and_cube(config):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system("hetero_channel", grid, config)
    counts = spec.channels_by_kind()
    assert counts[ChannelKind.PARALLEL] == 24
    assert counts[ChannelKind.SERIAL] > 0
    assert spec.has_cube and not spec.has_wraparound


def test_onchip_channels_never_cross_chiplets(config, family):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system(family, grid, config)
    for channel in spec.channels:
        crosses = grid.chiplet_of(channel.src) != grid.chiplet_of(channel.dst)
        if channel.kind is ChannelKind.ONCHIP:
            assert not crosses
        else:
            assert crosses


def test_channel_parameters_follow_config(family):
    config = SimConfig(onchip_buffer=24, interface_buffer=48, n_vcs=3)
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system(family, grid, config)
    for channel in spec.channels:
        assert channel.n_vcs == 3
        expected = 48 if channel.is_interface else 24
        assert channel.buffer_depth == expected


def test_single_chiplet_torus_has_no_wraps(config):
    grid = ChipletGrid(1, 1, 4, 4)
    spec = build_system("serial_torus", grid, config)
    assert not any(c.tag[0] == "wrap" for c in spec.channels)


def test_mesh_tags_unique_per_node(config, family):
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system(family, grid, config)
    seen: dict[tuple, int] = {}
    for channel in spec.channels:
        key = (channel.src, channel.tag)
        assert key not in seen, f"duplicate tag {channel.tag} at node {channel.src}"
        seen[key] = 1
