"""Tests for the telemetry subsystem: bus, collectors, trace, session."""

import io
import json

import pytest

from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.telemetry import (
    EVENT_NAMES,
    NULL_BUS,
    ChromeTraceBuilder,
    EpochMetrics,
    ProgressReporter,
    TelemetryBus,
    TelemetryConfig,
)
from repro.viz import timeseries_heatmap

from .helpers import build_chain, run_cycles


# -- bus semantics ----------------------------------------------------------
def test_fresh_bus_is_zero_cost():
    bus = TelemetryBus()
    for name in EVENT_NAMES:
        assert getattr(bus, name) is None
        assert not bus.active(name)


def test_single_subscriber_binds_directly():
    bus = TelemetryBus()
    calls = []
    callback = bus.subscribe("cycle_end", lambda network, now: calls.append(now))
    assert bus.cycle_end is callback  # no dispatch wrapper for one listener
    bus.cycle_end(None, 7)
    assert calls == [7]
    bus.unsubscribe("cycle_end", callback)
    assert bus.cycle_end is None


def test_fanout_preserves_subscription_order():
    bus = TelemetryBus()
    calls = []
    first = bus.subscribe("packet_inject", lambda *a: calls.append("first"))
    second = bus.subscribe("packet_inject", lambda *a: calls.append("second"))
    assert bus.subscriber_count("packet_inject") == 2
    bus.packet_inject(None, None)
    assert calls == ["first", "second"]
    bus.unsubscribe("packet_inject", first)
    assert bus.packet_inject is second
    bus.unsubscribe("packet_inject", second)
    assert bus.packet_inject is None


def test_unknown_event_rejected():
    bus = TelemetryBus()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        bus.subscribe("no_such_event", lambda: None)


def test_unsubscribe_absent_callback_is_noop():
    bus = TelemetryBus()
    bus.unsubscribe("cycle_end", lambda: None)
    assert bus.cycle_end is None


def test_clear_drops_everything():
    bus = TelemetryBus()
    bus.subscribe("cycle_end", lambda *a: None)
    bus.subscribe("flit_send", lambda *a: None)
    bus.clear()
    for name in EVENT_NAMES:
        assert getattr(bus, name) is None


def test_inert_bus_rejects_subscription():
    with pytest.raises(RuntimeError, match="inert"):
        NULL_BUS.subscribe("cycle_end", lambda *a: None)


# -- event emission on real networks ----------------------------------------
def test_chain_emits_lifecycle_events():
    network, _stats = build_chain(3)
    counts = {name: 0 for name in EVENT_NAMES}
    for name in EVENT_NAMES:
        network.telemetry.subscribe(
            name, lambda *a, _n=name: counts.__setitem__(_n, counts[_n] + 1)
        )
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 50)
    assert counts["packet_inject"] == 1
    assert counts["packet_eject"] == 1
    assert counts["cycle_end"] == 50
    # One RC and one VC-allocation grant per router the head visits
    # (two forwarding hops + the ejection allocation at the destination).
    assert counts["route_compute"] == 3
    assert counts["vc_alloc"] == 3
    # 4 flits cross two links each; every hop is one accept + one recv.
    assert counts["link_accept"] == 8
    assert counts["flit_recv"] == 8
    # flit_send also covers ejection port traversals (2 links + eject).
    assert counts["flit_send"] == 12
    assert counts["credit_return"] == 8
    assert counts["phy_dispatch"] == 0  # no hetero-PHY links in the chain


def test_hetero_phy_chain_emits_phy_and_rob_events():
    network, _stats = build_chain(2, ChannelKind.HETERO_PHY)
    events = {"phy_dispatch": [], "rob_insert": [], "rob_release": []}
    bus = network.telemetry
    bus.subscribe("phy_dispatch", lambda link, f, vc, phy, now: events["phy_dispatch"].append(phy))
    bus.subscribe("rob_insert", lambda link, f, vc, now: events["rob_insert"].append(f))
    bus.subscribe("rob_release", lambda link, f, vc, now: events["rob_release"].append(f))
    network.inject(Packet(0, 1, 4, 0))
    run_cycles(network, 60)
    assert len(events["phy_dispatch"]) == 4
    assert set(events["phy_dispatch"]) <= {"P", "S"}
    # Every flit passes the reorder buffer in and out exactly once.
    assert len(events["rob_insert"]) == 4
    assert len(events["rob_release"]) == 4


def test_subscribers_dispatch_in_subscription_order():
    """Collectors coexist: earlier subscribers run first on every event.

    The latency ledger relies on this — subscribed before a reporting
    probe, its attribution for a packet is complete by the time the probe
    sees the same ``packet_eject``.
    """
    from repro.telemetry import LatencyLedger

    network, stats = build_chain(3)
    stream = io.StringIO()
    reporter = ProgressReporter(network, every_cycles=10, stream=stream)
    ledger = LatencyLedger(network)
    observed = []
    network.telemetry.subscribe(
        "packet_eject",
        lambda router, packet, now: observed.append(ledger.packets),
    )
    network.inject(Packet(0, 2, 4, 0))
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 50)
    reporter.close()
    # Subscription order == dispatch order: the ledger had already
    # attributed packet N when the probe observed ejection N.
    assert observed == [1, 2]
    assert ledger.packets == stats.packets_delivered == 2
    assert sum(ledger.stage_totals().values()) == sum(stats.latencies)
    assert reporter.updates == 5  # the reporter ran alongside, unaffected


def test_detached_probe_restores_fast_path():
    network, _stats = build_chain(2)
    seen = []
    callback = network.telemetry.subscribe("link_accept", lambda *a: seen.append(a))
    network.inject(Packet(0, 1, 2, 0))
    run_cycles(network, 20)
    assert seen
    network.telemetry.unsubscribe("link_accept", callback)
    count = len(seen)
    network.inject(Packet(0, 1, 2, 20))
    run_cycles(network, 20, start=20)
    assert len(seen) == count  # nothing recorded after detach
    assert network.telemetry.link_accept is None


# -- epoch metrics ----------------------------------------------------------
def test_epoch_metrics_boundaries_and_conservation():
    network, stats = build_chain(3)
    metrics = EpochMetrics(network, epoch_length=10)
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 25)
    metrics.finish(25)
    samples = metrics.epochs()
    assert [(s.start, s.end) for s in samples] == [(0, 10), (10, 20), (20, 25)]
    assert sum(s.flits_injected for s in samples) == stats.flits_injected
    carried = {}
    for sample in samples:
        for index, flits in sample.link_flits.items():
            carried[index] = carried.get(index, 0) + flits
    assert carried == {
        index: link.flits_carried
        for index, link in enumerate(network.links)
        if link.flits_carried
    }
    assert metrics.totals()["packets_delivered"] == stats.packets_delivered


def test_epoch_metrics_warmup_exclusion():
    network, _stats = build_chain(2)
    metrics = EpochMetrics(network, epoch_length=10, warmup=15)
    run_cycles(network, 30)
    metrics.finish(30)
    flagged = metrics.epochs(include_warmup=True)
    assert [s.warmup for s in flagged] == [True, True, False]
    measured = metrics.epochs()
    assert [s.start for s in measured] == [20]
    assert metrics.totals()["epochs"] == 1
    assert metrics.totals(include_warmup=True)["epochs"] == 3


def test_epoch_metrics_credit_stall_accumulation():
    network, _stats = build_chain(2)
    metrics = EpochMetrics(network, epoch_length=10)
    router = network.routers[0]
    for now in (3, 4, 5):
        network.telemetry.credit_stall(router, 1, 0, now)
    run_cycles(network, 10)
    metrics.finish(10)
    [sample] = metrics.epochs()
    assert sample.credit_stalls == {(0, 1, 0): 3}
    assert metrics.totals()["credit_stall_cycles"] == 3


def test_epoch_metrics_validates_epoch_length():
    network, _stats = build_chain(2)
    with pytest.raises(ValueError, match="epoch_length"):
        EpochMetrics(network, epoch_length=0)


def test_epoch_metrics_write_and_link_series(tmp_path):
    network, _stats = build_chain(3)
    metrics = EpochMetrics(network, epoch_length=10)
    network.inject(Packet(0, 2, 4, 0))
    run_cycles(network, 30)
    metrics.finish(30)
    written = metrics.write(tmp_path)
    names = {path.name for path in written}
    assert names == {
        "epochs.csv",
        "link_util.csv",
        "buffer_occupancy.csv",
        "credit_stalls.csv",
        "rob.csv",
        "phy_split.csv",
        "metrics.json",
    }
    document = json.loads((tmp_path / "metrics.json").read_text())
    assert document["epoch_length"] == 10
    assert len(document["epochs"]) == 3
    labels, rows = metrics.link_series(top=5)
    assert labels and rows
    art = timeseries_heatmap(labels, rows, epoch_length=10)
    assert labels[0] in art
    assert "3 epochs" in art


# -- chrome trace export -----------------------------------------------------
def test_trace_records_packet_lane(tmp_path):
    network, _stats = build_chain(3)
    trace = ChromeTraceBuilder(network, counter_interval=10)
    packet = Packet(0, 2, 4, 0)
    network.inject(packet)
    run_cycles(network, 40)
    trace.detach()
    document = trace.to_dict()
    events = document["traceEvents"]
    phases = {event["ph"] for event in events}
    assert phases >= {"M", "X", "i", "C"}
    hops = [e for e in events if e["ph"] == "X" and e.get("cat") == "hop"]
    assert len(hops) == 2  # two links in the chain
    lifetimes = [e for e in events if e["ph"] == "X" and e.get("cat") == "packet"]
    assert len(lifetimes) == 1
    assert lifetimes[0]["dur"] > 0
    path = trace.write(tmp_path / "trace.json")
    assert json.loads(path.read_text())["traceEvents"]


def test_trace_caps_sampled_packets():
    network, _stats = build_chain(2)
    trace = ChromeTraceBuilder(network, max_packets=1, counter_interval=0)
    network.inject(Packet(0, 1, 2, 0))
    network.inject(Packet(0, 1, 2, 0))
    run_cycles(network, 30)
    trace.detach()
    assert trace.to_dict()["otherData"]["sampled_packets"] == 1


def test_trace_sample_predicate():
    network, _stats = build_chain(2)
    trace = ChromeTraceBuilder(
        network, sample=lambda packet: packet.dst == 99, counter_interval=0
    )
    network.inject(Packet(0, 1, 2, 0))
    run_cycles(network, 30)
    trace.detach()
    assert trace.to_dict()["otherData"]["sampled_packets"] == 0


# -- progress reporter -------------------------------------------------------
def test_progress_reporter_writes_status_line():
    network, _stats = build_chain(2)
    stream = io.StringIO()
    reporter = ProgressReporter(
        network, every_cycles=10, stream=stream, total_cycles=30
    )
    network.inject(Packet(0, 1, 2, 0))
    run_cycles(network, 30)
    reporter.close()
    text = stream.getvalue()
    assert reporter.updates == 3
    assert "cycle" in text and "cyc/s" in text and "in-flight" in text
    assert text.endswith("\n")
    reporter.close()  # idempotent
    assert network.telemetry.cycle_end is None


def test_progress_reporter_validates_interval():
    network, _stats = build_chain(2)
    with pytest.raises(ValueError, match="every_cycles"):
        ProgressReporter(network, every_cycles=0)


def test_progress_reporter_tty_rewrites_one_line():
    class TtyStream(io.StringIO):
        def isatty(self):
            return True

    network, _stats = build_chain(2)
    stream = TtyStream()
    reporter = ProgressReporter(network, every_cycles=10, stream=stream)
    run_cycles(network, 30)
    reporter.close()
    text = stream.getvalue()
    assert reporter.updates == 3
    assert text.count("\r") == 3  # in-place rewrites
    assert text.endswith("\n") and text.count("\n") == 1  # one final newline


def test_progress_reporter_non_tty_emits_newline_per_update():
    network, _stats = build_chain(2)
    stream = io.StringIO()  # StringIO.isatty() is False: the pipe/CI case
    reporter = ProgressReporter(network, every_cycles=10, stream=stream)
    run_cycles(network, 30)
    reporter.close()
    text = stream.getvalue()
    assert reporter.updates == 3
    assert "\r" not in text
    assert text.count("\n") == 3  # one terminated line per update, no extra


def test_progress_reporter_survives_streams_without_isatty():
    class BareStream:
        def __init__(self):
            self.chunks = []

        def write(self, text):
            self.chunks.append(text)

        def flush(self):
            pass

    network, _stats = build_chain(2)
    stream = BareStream()
    reporter = ProgressReporter(network, every_cycles=10, stream=stream)
    run_cycles(network, 10)
    reporter.close()
    assert reporter.updates == 1
    assert "".join(stream.chunks).endswith("\n")  # fell back to non-TTY mode


# -- end-to-end through the harness ------------------------------------------
def test_run_synthetic_telemetry_session(tmp_path, small_grid):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import run_synthetic
    from repro.topology.system import build_system

    spec = build_system("hetero_phy_torus", small_grid, SimConfig(
        sim_cycles=2_000, warmup_cycles=200
    ))
    config = TelemetryConfig(
        metrics_dir=tmp_path / "metrics",
        trace_path=tmp_path / "trace.json",
        epoch_length=400,
        profile=True,
        breakdown_csv=tmp_path / "breakdown.csv",  # implies the ledger
    )
    result = run_synthetic(spec, "uniform", 0.05, telemetry=config)
    session = result.telemetry
    assert session is not None
    assert (tmp_path / "metrics" / "epochs.csv").is_file()
    assert session.ledger is not None
    assert (tmp_path / "breakdown.csv") in session.written
    assert session.ledger.packets == result.stats.packets_delivered
    assert json.loads((tmp_path / "trace.json").read_text())["traceEvents"]
    assert "function calls" in session.profile_text
    # Warm-up exclusion: the first epoch (start 0 < 200) is flagged.
    flagged = session.metrics.epochs(include_warmup=True)
    assert flagged[0].warmup and not flagged[-1].warmup
    # PHY split shows up for the hetero family and matches the run total.
    split = [
        sum(values) for values in zip(
            *(epoch_split
              for sample in flagged
              for epoch_split in sample.phy_split.values())
        )
    ]
    assert sum(split) == sum(result.phy_split) + sum(
        getattr(link, "flits_bypassed", 0) for link in session.network.links
    )
    # Finalize detached everything: the bus is back to the fast path.
    for name in EVENT_NAMES:
        assert getattr(session.network.telemetry, name) is None


def test_run_trace_telemetry_session(tmp_path, small_grid):
    from repro.sim.config import SimConfig
    from repro.sim.experiment import run_trace
    from repro.topology.system import build_system
    from repro.traffic.trace import Trace, TraceRecord

    spec = build_system("hetero_phy_torus", small_grid, SimConfig(
        sim_cycles=1_200, warmup_cycles=200
    ))
    records = [TraceRecord(t, 0, 35, 8) for t in range(0, 200, 20)]
    config = TelemetryConfig(metrics_dir=tmp_path, epoch_length=100)
    result = run_trace(spec, Trace(records, name="t"), telemetry=config)
    assert result.stats.packets_delivered == len(records)
    session = result.telemetry
    assert session is not None
    assert (tmp_path / "epochs.csv").is_file()
    # The trace drained early; the final partial epoch ends at the stop cycle.
    assert session.metrics.epochs(include_warmup=True)[-1].end == result.cycles


def test_run_synthetic_without_telemetry_has_none():
    from repro.sim.config import SimConfig
    from repro.sim.experiment import run_synthetic
    from repro.topology.grid import ChipletGrid
    from repro.topology.system import build_system

    grid = ChipletGrid(2, 2, 2, 2)
    spec = build_system("parallel_mesh", grid, SimConfig(
        sim_cycles=600, warmup_cycles=60
    ))
    result = run_synthetic(spec, "uniform", 0.05)
    assert result.telemetry is None


def test_engine_run_profiled_reports():
    from repro.sim.engine import Engine

    network, stats = build_chain(3)

    class Once:
        def __init__(self):
            self.sent = False

        def step(self, now):
            if not self.sent:
                self.sent = True
                return [Packet(0, 2, 4, now)]
            return []

        def done(self, now):
            return self.sent

    engine = Engine(network, Once(), stats)
    result, report = engine.run_profiled(50)
    assert result is stats
    assert stats.packets_delivered == 1
    assert "function calls" in report.text()
    # The capture folds into phase-rooted stacks and a valid speedscope doc.
    folded = report.folded()
    assert folded and all(stack[0] == "engine" for stack, _ in folded)
    from repro.telemetry.hostprof import validate_speedscope

    validate_speedscope(report.speedscope(name="unit"))


# -- epoch metrics edge cases -------------------------------------------------
def test_epoch_metrics_zero_cycle_run_has_no_samples():
    network, _stats = build_chain(2)
    metrics = EpochMetrics(network, epoch_length=10)
    metrics.finish(0)  # nothing ever ran
    assert metrics.epochs(include_warmup=True) == []
    assert metrics.totals()["epochs"] == 0
    assert network.telemetry.cycle_end is None  # detached all the same


def test_epoch_metrics_finish_on_boundary_adds_no_empty_epoch():
    network, _stats = build_chain(2)
    metrics = EpochMetrics(network, epoch_length=10)
    run_cycles(network, 20)  # the run ends exactly on an epoch boundary
    metrics.finish(20)
    samples = metrics.epochs(include_warmup=True)
    assert [(s.start, s.end) for s in samples] == [(0, 10), (10, 20)]


def test_epoch_metrics_detach_is_idempotent():
    network, _stats = build_chain(2)
    metrics = EpochMetrics(network, epoch_length=10)
    run_cycles(network, 15)
    metrics.detach()
    metrics.detach()  # second detach: no-op
    metrics.finish(15)  # finish after detach must not append a partial epoch
    assert [(s.start, s.end) for s in metrics.epochs()] == [(0, 10)]
    assert network.telemetry.cycle_end is None
    assert network.telemetry.credit_stall is None


# -- ETA estimation -----------------------------------------------------------
def test_eta_estimator_smooths_and_converges():
    from repro.telemetry import EtaEstimator

    eta = EtaEstimator(1_000, alpha=0.5)
    assert eta.eta_seconds() is None  # no speed estimate yet
    eta._last_wall -= 1.0  # pretend 1 s elapsed: 100 cyc/s
    cps = eta.update(100)
    assert cps == pytest.approx(100.0, rel=0.1)
    remaining = eta.eta_seconds(100)
    assert remaining == pytest.approx(900 / cps)
    assert eta.eta_seconds(2_000) == 0.0  # past the horizon: clamps at zero
    assert eta.wall_seconds >= 0.0


def test_eta_estimator_without_horizon_has_no_eta():
    from repro.telemetry import EtaEstimator

    eta = EtaEstimator(None)
    eta._last_wall -= 1.0
    eta.update(500)
    assert eta.eta_seconds() is None


def test_eta_estimator_ignores_non_advancing_updates():
    from repro.telemetry import EtaEstimator

    eta = EtaEstimator(100)
    eta._last_wall -= 1.0
    first = eta.update(50)
    again = eta.update(50)  # same cycle: the estimate must not move
    assert again == first


def test_eta_estimator_validates_alpha():
    from repro.telemetry import EtaEstimator

    with pytest.raises(ValueError, match="alpha"):
        EtaEstimator(100, alpha=0.0)


def test_format_eta_renderings():
    from repro.telemetry import format_eta

    assert format_eta(3_800) == "1:03:20"
    assert format_eta(242) == "4:02"
    assert format_eta(0) == "0:00"
    assert format_eta(None) == "n/a"
    assert format_eta(float("nan")) == "n/a"
    assert format_eta(-1) == "n/a"


def test_progress_line_shows_eta_only_with_horizon():
    network, _stats = build_chain(2)
    with_horizon = io.StringIO()
    reporter = ProgressReporter(
        network, every_cycles=10, stream=with_horizon, total_cycles=20
    )
    run_cycles(network, 20)
    reporter.close()
    assert "eta" in with_horizon.getvalue()

    without = io.StringIO()
    reporter = ProgressReporter(network, every_cycles=10, stream=without)
    run_cycles(network, 20, start=20)
    reporter.close()
    assert "eta" not in without.getvalue()
