"""Tests for weighted torus direction planning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.weighted_path import HopCostModel
from repro.noc.channel import ChannelKind
from repro.routing.torus_moves import TorusAxisPlanner
from repro.sim.config import SimConfig


def make_planner(width=16, span=4, wrapped=True, kind=ChannelKind.HETERO_PHY):
    model = HopCostModel.performance_first(SimConfig())
    return TorusAxisPlanner(width, span, kind, model, wrapped=wrapped)


def test_validation():
    model = HopCostModel.performance_first(SimConfig())
    with pytest.raises(ValueError):
        TorusAxisPlanner(10, 4, ChannelKind.SERIAL, model)  # not a multiple


def test_no_move_when_aligned():
    planner = make_planner()
    assert planner.directions(3, 3) == ()
    assert planner.axis_cost(3, 3, +1) == 0.0


def test_short_distance_prefers_direct():
    planner = make_planner()
    assert planner.directions(0, 1) == (1,)
    assert planner.directions(5, 3) == (-1,)


def test_wraparound_chosen_for_far_pairs():
    planner = make_planner()
    # 0 -> 15: direct needs 15 hops; the wrap is one (expensive) hop.
    assert planner.directions(0, 15) == (-1,)
    assert planner.directions(15, 0) == (1,)


def test_unwrapped_axis_never_wraps():
    planner = make_planner(wrapped=False)
    assert planner.directions(0, 15) == (1,)
    assert planner.axis_cost(0, 15, -1) == float("inf")


def test_sign_validation():
    planner = make_planner()
    with pytest.raises(ValueError):
        planner.axis_cost(0, 1, 0)


@given(st.integers(0, 15), st.integers(0, 15))
def test_costs_positive_and_directions_nonempty(cur, dst):
    planner = make_planner()
    if cur == dst:
        assert planner.directions(cur, dst) == ()
        return
    dirs = planner.directions(cur, dst)
    assert dirs and set(dirs) <= {1, -1}
    for sign in (1, -1):
        assert planner.axis_cost(cur, dst, sign) > 0


@given(st.integers(0, 15), st.integers(0, 15))
def test_chosen_direction_is_cheapest(cur, dst):
    planner = make_planner()
    if cur == dst:
        return
    dirs = planner.directions(cur, dst)
    plus = planner.axis_cost(cur, dst, +1)
    minus = planner.axis_cost(cur, dst, -1)
    best = min(plus, minus)
    for sign in dirs:
        assert planner.axis_cost(cur, dst, sign) == best


@given(st.integers(0, 15), st.integers(0, 15))
def test_progress_is_monotone(cur, dst):
    """Following a chosen direction strictly decreases that direction's cost.

    This is the livelock-freedom argument for torus routing: after one
    step the same direction stays (weakly) preferred, so a packet cannot
    ping-pong between directions.
    """
    planner = make_planner()
    if cur == dst:
        return
    sign = planner.directions(cur, dst)[0]
    nxt = (cur + sign) % planner.width
    before = planner.axis_cost(cur, dst, sign)
    after = planner.axis_cost(nxt, dst, sign)
    assert after < before


def test_cost_decomposition_matches_hop_classes():
    """A direct path's cost equals the sum of its per-class hop costs."""
    config = SimConfig()
    model = HopCostModel.performance_first(config)
    planner = TorusAxisPlanner(8, 4, ChannelKind.SERIAL, model)
    onchip = model.hop_cost(ChannelKind.ONCHIP)
    boundary = model.hop_cost(ChannelKind.SERIAL)
    # 1 -> 5 crosses one chiplet boundary (between 3 and 4), 3 on-chip hops.
    assert planner.axis_cost(1, 5, +1) == pytest.approx(3 * onchip + boundary)


def test_directions_memoized():
    planner = make_planner()
    first = planner.directions(2, 9)
    assert planner.directions(2, 9) is first
