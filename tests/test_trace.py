"""Tests for the trace format, persistence, scaling and replay."""

import pytest

from repro.traffic.trace import Trace, TraceRecord, TraceWorkload


def sample_trace():
    return Trace(
        [
            TraceRecord(10, 0, 1, 4),
            TraceRecord(0, 2, 3, 1, "coherence", 1, False),
            TraceRecord(5, 1, 2, 9),
        ],
        name="sample",
    )


def test_records_sorted_by_cycle():
    trace = sample_trace()
    assert [r.cycle for r in trace.records] == [0, 5, 10]


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(-1, 0, 1)
    with pytest.raises(ValueError):
        TraceRecord(0, 0, 1, 0)
    with pytest.raises(ValueError):
        TraceRecord(0, 3, 3)


def test_duration_and_flits():
    trace = sample_trace()
    assert trace.duration == 11
    assert trace.total_flits == 14
    assert len(trace) == 3


def test_offered_load():
    trace = sample_trace()
    assert trace.offered_load(n_nodes=4) == pytest.approx(14 / (11 * 4))
    assert Trace([]).offered_load(4) == 0.0


def test_time_scaling_compresses():
    trace = sample_trace()
    fast = trace.scaled(2.0)
    assert [r.cycle for r in fast.records] == [0, 2, 5]
    assert fast.total_flits == trace.total_flits
    # double the rate => roughly double the offered load
    assert fast.offered_load(4) > trace.offered_load(4)


def test_time_scaling_dilates():
    trace = sample_trace()
    slow = trace.scaled(0.5)
    assert [r.cycle for r in slow.records] == [0, 10, 20]


def test_time_scale_validation():
    with pytest.raises(ValueError):
        sample_trace().scaled(0)


def test_save_load_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "t.csv"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.records == trace.records
    assert loaded.name == "t"


def test_load_rejects_non_trace(tmp_path):
    path = tmp_path / "bogus.csv"
    path.write_text("hello\n1,2\n")
    with pytest.raises(ValueError):
        Trace.load(path)


def test_workload_injects_at_trace_time():
    trace = sample_trace()
    workload = TraceWorkload(trace)
    by_cycle = {}
    for now in range(12):
        packets = list(workload.step(now))
        if packets:
            by_cycle[now] = packets
    assert set(by_cycle) == {0, 5, 10}
    assert by_cycle[0][0].msg_class == "coherence"
    assert by_cycle[0][0].priority == 1
    assert not by_cycle[0][0].ordered
    assert workload.done(11)


def test_workload_catches_up_after_gap():
    """Records are never lost even if step() is first called late."""
    workload = TraceWorkload(sample_trace())
    packets = list(workload.step(7))
    assert len(packets) == 2  # cycles 0 and 5
    assert packets[0].create_cycle == 0  # creation keeps the trace time
