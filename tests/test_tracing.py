"""Tests for per-packet route tracing."""

import pytest

from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.tracing import RouteTracer
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system

from .helpers import build_chain, run_cycles

CONFIG = SimConfig(sim_cycles=1_200, warmup_cycles=100)


def test_chain_path_recorded():
    network, _ = build_chain(4)
    tracer = RouteTracer(network)
    packet = Packet(0, 3, 4, 0)
    network.inject(packet)
    run_cycles(network, 40)
    assert tracer.nodes_of(packet) == [0, 1, 2, 3]
    assert len(tracer.path_of(packet)) == 3
    assert tracer.kinds_of(packet) == [ChannelKind.ONCHIP] * 3


def test_hop_timeline_monotone():
    network, _ = build_chain(4)
    tracer = RouteTracer(network)
    packet = Packet(0, 3, 4, 0)
    network.inject(packet)
    run_cycles(network, 40)
    cycles = [cycle for _idx, cycle in tracer.hop_timeline(packet)]
    assert cycles == sorted(cycles)
    assert len(set(cycles)) == 3  # one hop per cycle boundary


def test_sampling_filter():
    network, _ = build_chain(3)
    traced = Packet(0, 2, 2, 0)
    ignored = Packet(0, 2, 2, 0)
    tracer = RouteTracer(network, sample=lambda p: p.pid == traced.pid)
    network.inject(traced)
    network.inject(ignored)
    run_cycles(network, 40)
    assert tracer.path_of(traced)
    assert not tracer.path_of(ignored)


def test_torus_wrap_visible_in_path():
    grid = ChipletGrid(4, 1, 2, 2)  # width 8, wraps pay off corner to corner
    spec = build_system("serial_torus", grid, CONFIG)
    stats = Stats()
    network = build_network(spec, stats)
    tracer = RouteTracer(network)
    packet = Packet(grid.node_at(0, 0), grid.node_at(7, 0), 16, 0)

    class OneShot:
        def __init__(self):
            self.sent = False

        def step(self, now):
            if not self.sent:
                self.sent = True
                return [packet]
            return []

        def done(self, now):
            return True

    Engine(network, OneShot(), stats).run(400)
    assert packet.arrive_cycle is not None
    tags = [network.links[i].spec.tag[0] for i in tracer.path_of(packet)]
    assert "wrap" in tags  # the wraparound shortcut was taken
    assert tracer.interface_hops(packet) >= 1


def test_describe_is_readable():
    network, _ = build_chain(3)
    tracer = RouteTracer(network)
    packet = Packet(0, 2, 1, 0)
    network.inject(packet)
    run_cycles(network, 30)
    text = tracer.describe(packet)
    assert "0-[onchip]->1" in text
    assert "1-[onchip]->2" in text


def test_describe_unmoved_packet():
    network, _ = build_chain(2)
    tracer = RouteTracer(network)
    packet = Packet(0, 1, 1, 0)
    assert "no movement" in tracer.describe(packet)
