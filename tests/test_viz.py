"""Tests for the text visualization helpers."""

import math

import pytest

from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.viz import ascii_curve, link_utilization_table, render_topology, utilization_heatmap

from .conftest import make_network


def test_render_topology_mentions_structure():
    spec = build_system("hetero_channel", ChipletGrid(2, 2, 3, 3), SimConfig())
    text = render_topology(spec)
    assert "2x2 chiplets" in text
    assert "hypercube" in text
    assert "parallel" in text and "serial" in text


def test_render_topology_torus_legend():
    spec = build_system("hetero_phy_torus", ChipletGrid(2, 2, 3, 3), SimConfig())
    text = render_topology(spec)
    assert "wraparound" in text
    assert "hetero_phy" in text


def _finished_run():
    config = SimConfig(sim_cycles=1_000, warmup_cycles=100)
    grid = ChipletGrid(2, 2, 3, 3)
    spec = build_system("parallel_mesh", grid, config)
    from repro.sim.build import build_network
    from repro.sim.engine import Engine
    from repro.sim.stats import Stats
    from repro.traffic.injection import SyntheticWorkload
    from repro.traffic.patterns import make_pattern

    stats = Stats(measure_from=100)
    network = build_network(spec, stats)
    workload = SyntheticWorkload(
        make_pattern("uniform", grid.n_nodes), grid.n_nodes, 0.1, 16, until=1_000, seed=1
    )
    Engine(network, workload, stats).run(1_000)
    return spec, network


def test_utilization_heatmap_shape():
    spec, network = _finished_run()
    text = utilization_heatmap(network, spec, cycles=1_000)
    lines = text.splitlines()
    assert len(lines) == spec.grid.height + 1
    assert all(len(line) == spec.grid.width for line in lines[1:])
    with pytest.raises(ValueError):
        utilization_heatmap(network, spec, cycles=0)


def test_link_utilization_table():
    spec, network = _finished_run()
    text = link_utilization_table(network, cycles=1_000, top=5)
    lines = text.splitlines()
    assert len(lines) <= 6
    assert "onchip" in text or "parallel" in text
    # utilizations sorted descending
    flits = [int(line.split()[2]) for line in lines[1:]]
    assert flits == sorted(flits, reverse=True)


def test_ascii_curve_basic():
    text = ascii_curve([0, 1, 2, 3], [10, 20, 15, 40], label="latency")
    assert "latency" in text
    assert "*" in text
    assert "40.0" in text and "10.0" in text


def test_ascii_curve_handles_nan():
    text = ascii_curve([0, 1, 2], [10, float("nan"), 30])
    assert "*" in text


def test_ascii_curve_validation():
    with pytest.raises(ValueError):
        ascii_curve([], [])
    with pytest.raises(ValueError):
        ascii_curve([1, 2], [1])
    assert "no finite points" in ascii_curve([1], [math.nan])


def test_render_path():
    from repro.viz import render_path

    spec = build_system("parallel_mesh", ChipletGrid(2, 2, 3, 3), SimConfig())
    text = render_path(spec, [0, 1, 2, 8])
    lines = text.splitlines()
    assert "S" in text and "D" in text and "o" in text
    assert len(lines) == spec.grid.height + 1
    with pytest.raises(ValueError):
        render_path(spec, [])


def test_svg_line_chart_structure():
    from repro.viz import svg_line_chart

    svg = svg_line_chart(
        [
            ("mesh", [0.1, 0.2, 0.3], [20.0, 25.0, 40.0]),
            ("torus", [0.1, 0.2, 0.3], [60.0, 61.0, 63.0]),
        ],
        title="latency vs rate",
        x_label="rate",
        y_label="latency",
    )
    assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
    assert svg.count("<polyline") == 2
    assert svg.count('var(--series-1') >= 1 and svg.count('var(--series-2') >= 1
    assert svg.count("<circle") == 6  # one marker per point
    assert "<title>" in svg  # native tooltips
    assert "mesh" in svg and "torus" in svg  # legend labels
    assert "latency vs rate" in svg


def test_svg_line_chart_skips_nan_and_validates():
    from repro.viz import svg_line_chart

    svg = svg_line_chart(
        [("s", [0.0, 1.0, 2.0], [1.0, math.nan, 3.0])],
        title="t", x_label="x", y_label="y",
    )
    assert svg.count("<circle") == 2  # the NaN point is dropped
    assert "nan" not in svg
    assert "no finite points" in svg_line_chart(
        [("s", [0.0], [math.nan])], title="t", x_label="x", y_label="y"
    )
    with pytest.raises(ValueError):
        svg_line_chart([], title="t", x_label="x", y_label="y")
    with pytest.raises(ValueError):
        svg_line_chart([("s", [1.0], [])], title="t", x_label="x", y_label="y")


def test_svg_annotated_line_marks_changepoints():
    from repro.viz import svg_annotated_line, svg_line_chart

    series = [("cps", [float(i) for i in range(6)],
               [100.0, 101.0, 99.0, 80.0, 81.0, 79.0])]
    svg = svg_annotated_line(
        series,
        annotations=[(3.0, "changepoint @ seed-003")],
        title="t", x_label="run", y_label="cps",
    )
    assert 'stroke-dasharray="5 3"' in svg  # the vertical marker rule
    assert "changepoint @ seed-003" in svg
    assert "var(--series-8" in svg  # alarm color, matching the dashboard

    # Out-of-range and NaN annotations are dropped, not drawn off-plot.
    clean = svg_annotated_line(
        series,
        annotations=[(99.0, "beyond"), (math.nan, "nowhere")],
        title="t", x_label="run", y_label="cps",
    )
    assert "beyond" not in clean and "nowhere" not in clean
    # With no annotations the output is exactly the plain line chart.
    assert clean == svg_line_chart(series, title="t", x_label="run", y_label="cps")


def test_svg_stacked_bars_structure():
    from repro.viz import svg_stacked_bars

    svg = svg_stacked_bars(
        [
            ("run A", [10.0, 5.0, 0.0, 2.0]),
            ("run B", [8.0, 0.0, 3.0, 1.0]),
        ],
        ["source_queue", "va_wait", "link_serial", "ejection"],
        title="latency breakdown",
        x_label="cycles",
    )
    assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
    # Zero-valued segments are skipped: 3 drawn per bar, each with a
    # native tooltip naming bar, segment, value and share.
    assert svg.count("<title>") == 6
    assert "run A · source_queue: 10" in svg
    assert "(58.8%)" in svg  # 10 / 17
    # Color follows segment identity in fixed assignment order.
    assert "var(--series-1" in svg and "var(--series-4" in svg
    assert "latency breakdown" in svg and "cycles" in svg
    # Legend carries every segment name even when a bar skips it.
    for name in ("source_queue", "va_wait", "link_serial", "ejection"):
        assert svg.count(name) >= 1
    # Totals are annotated at the bar ends in ink, not series color.
    assert ">17<" in svg and ">12<" in svg


def test_svg_stacked_bars_validation():
    from repro.viz import svg_stacked_bars

    with pytest.raises(ValueError, match="non-empty"):
        svg_stacked_bars([], ["a"])
    with pytest.raises(ValueError, match="expected 2 segment values"):
        svg_stacked_bars([("bar", [1.0])], ["a", "b"])


def test_svg_stacked_bars_all_zero_bar_renders():
    from repro.viz import svg_stacked_bars

    svg = svg_stacked_bars([("idle", [0.0, 0.0])], ["a", "b"], title="t")
    assert svg.count("<title>") == 0  # nothing to draw, nothing to tip
    assert "idle" in svg  # the bar label still appears


def test_svg_sparkline_renders_trend_and_degenerate_inputs():
    from repro.viz import svg_sparkline

    svg = svg_sparkline([10.0, 120.0, 480.0], title="oldest age")
    assert svg.count("<polyline") == 1
    assert svg.count("<circle") == 1  # last point marked
    assert "oldest age: min 10, max 480, last 480" in svg
    assert "var(--series-1" in svg

    # Fewer than two finite points degrades to a text label, not a line.
    single = svg_sparkline([42.0])
    assert "<polyline" not in single and ">42<" in single
    empty = svg_sparkline([])
    assert "no data" in empty
    nans = svg_sparkline([float("nan"), 7.0])
    assert "<polyline" not in nans and ">7<" in nans
