"""Tests for the Eq (2) bandwidth-latency model (Fig 8)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.vt_model import (
    HeteroVTCurve,
    VTCurve,
    hetero_curve,
    pin_constrained_hetero,
    sample_curves,
)

curve_params = st.tuples(
    st.floats(0.5, 16.0), st.floats(0.0, 40.0)
)


def test_eq2_basic_shape():
    curve = VTCurve(bandwidth=4, delay=20)
    assert curve.volume(0) == 0
    assert curve.volume(20) == 0
    assert curve.volume(25) == pytest.approx(20)


def test_validation():
    with pytest.raises(ValueError):
        VTCurve(0, 5)
    with pytest.raises(ValueError):
        VTCurve(2, -1)
    with pytest.raises(ValueError):
        HeteroVTCurve(())


def test_time_to_deliver_inverse():
    curve = VTCurve(bandwidth=2, delay=5)
    assert curve.time_to_deliver(0) == 0
    t = curve.time_to_deliver(30)
    assert curve.volume(t) == pytest.approx(30)


@given(curve_params, curve_params)
def test_hetero_volume_is_sum(a, b):
    pa = VTCurve(*a, name="a")
    pb = VTCurve(*b, name="b")
    hetero = hetero_curve(pa, pb)
    for t in (0.0, 5.0, 17.3, 60.0):
        assert hetero.volume(t) == pytest.approx(pa.volume(t) + pb.volume(t))


@given(curve_params, curve_params)
def test_hetero_dominates_components(a, b):
    """The hetero fold delivers at least as much as either component."""
    pa = VTCurve(*a, name="a")
    pb = VTCurve(*b, name="b")
    hetero = hetero_curve(pa, pb)
    t = np.linspace(0, 80, 33)
    hv = np.asarray(hetero.volume(t))
    assert np.all(hv >= np.asarray(pa.volume(t)) - 1e-9)
    assert np.all(hv >= np.asarray(pb.volume(t)) - 1e-9)


@given(curve_params, curve_params, st.floats(0.5, 200.0))
def test_hetero_time_to_deliver_not_worse(a, b, volume):
    pa = VTCurve(*a, name="a")
    pb = VTCurve(*b, name="b")
    hetero = hetero_curve(pa, pb)
    t_h = hetero.time_to_deliver(volume)
    assert t_h <= pa.time_to_deliver(volume) + 1e-6
    assert t_h <= pb.time_to_deliver(volume) + 1e-6
    assert hetero.volume(t_h) == pytest.approx(volume, rel=1e-4, abs=1e-4)


def test_hetero_t_intercept_is_fast_component():
    parallel = VTCurve(2, 5, name="p")
    serial = VTCurve(4, 20, name="s")
    assert hetero_curve(parallel, serial).min_delay == 5


def test_pin_constrained_scaling():
    parallel = VTCurve(2, 5, name="p")
    serial = VTCurve(4, 20, name="s")
    half = pin_constrained_hetero(parallel, serial, 0.5)
    assert half.components[0].bandwidth == pytest.approx(1.0)
    assert half.components[1].bandwidth == pytest.approx(2.0)
    # Delays are technology properties; pin share only scales lanes.
    assert half.components[0].delay == 5
    assert half.components[1].delay == 20


def test_pin_share_validation():
    parallel = VTCurve(2, 5)
    serial = VTCurve(4, 20)
    with pytest.raises(ValueError):
        pin_constrained_hetero(parallel, serial, 0.0)
    with pytest.raises(ValueError):
        pin_constrained_hetero(parallel, serial, 1.0)
    with pytest.raises(ValueError):
        parallel.scaled(0.0)


def test_sample_curves_grid():
    parallel = VTCurve(2, 5, name="p")
    data = sample_curves([parallel], t_max=10, points=11)
    t, v = data["p"]
    assert len(t) == len(v) == 11
    assert v[0] == 0
    assert v[-1] == pytest.approx(parallel.volume(10.0))


def test_sample_curves_validation():
    with pytest.raises(ValueError):
        sample_curves([VTCurve(1, 1)], t_max=0)
