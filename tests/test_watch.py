"""Tests for the fleet observability service (``repro.telemetry.server``)."""

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.telemetry import LIVE_SCHEMA_VERSION
from repro.telemetry.runstore import RunStore
from repro.telemetry.server import STALE_AFTER_SECONDS, WatchService, make_server

from .helpers import build_chain, run_cycles
from .test_runstore import make_record


def seed_runs_dir(tmp_path, *, finish=True, fail=False):
    """A runs directory with one registry record and one live feed."""
    from repro.telemetry.live import LiveFeed

    runs_dir = tmp_path / "runs"
    store = RunStore(runs_dir)
    record = make_record(run_id="watchrun00001")
    store.append(record)
    network, _stats = build_chain(3)
    feed = LiveFeed(
        network,
        run_id="watchrun00001",
        directory=runs_dir / "live",
        every=10,
        total_cycles=40,
    )
    feed.start({"system": "chain", "workload": "unit", "policy": "balanced"})
    run_cycles(network, 20)
    if fail:
        feed.fail("deadlock", 20, error="DeadlockError: wedged", bundle="B.json")
    elif finish:
        run_cycles(network, 20, start=20)
        feed.finish(40)
    else:
        feed.close()  # leave the feed mid-run: an in-flight view
    return runs_dir


# -- state assembly -----------------------------------------------------------
def test_fleet_state_joins_registry_and_feeds(tmp_path):
    runs_dir = seed_runs_dir(tmp_path)
    state = WatchService(runs_dir).fleet_state()
    assert state["schema_version"] == LIVE_SCHEMA_VERSION
    assert state["records"] == 1
    assert state["skipped"] == 0
    assert state["in_flight"] == []  # the run finished
    [status] = state["live"]
    assert status["run_id"] == "watchrun00001"
    assert status["state"] == "finished"
    assert state["failures"] == []
    [recent] = state["recent"]
    assert recent["run_id"] == "watchrun00001"


def test_fleet_state_counts_skipped_registry_lines(tmp_path):
    runs_dir = seed_runs_dir(tmp_path)
    with (runs_dir / "runs.jsonl").open("a", encoding="utf-8") as handle:
        handle.write("{corrupt\n")
    state = WatchService(runs_dir).fleet_state()
    assert state["records"] == 1
    assert state["skipped"] == 1


def test_fleet_state_tracks_in_flight_and_failures(tmp_path):
    running_dir = seed_runs_dir(tmp_path / "a", finish=False)
    state = WatchService(running_dir).fleet_state()
    assert state["in_flight"] == ["watchrun00001"]
    [status] = state["live"]
    assert status["state"] == "running"
    assert status["age_seconds"] < STALE_AFTER_SECONDS

    failed_dir = seed_runs_dir(tmp_path / "b", fail=True)
    state = WatchService(failed_dir).fleet_state()
    assert state["in_flight"] == []
    [failure] = state["failures"]
    assert failure["reason"] == "deadlock"
    assert failure["bundle"] == "B.json"


def test_live_state_returns_events_or_none(tmp_path):
    runs_dir = seed_runs_dir(tmp_path)
    service = WatchService(runs_dir)
    state = service.live_state("watchrun00001")
    assert state["status"]["state"] == "finished"
    assert state["events"][0]["kind"] == "start"
    assert service.live_state("no-such-run") is None


def test_bench_state_extracts_trajectory(tmp_path):
    runs_dir = tmp_path / "runs"
    store = RunStore(runs_dir)
    store.append(make_record())  # a simulate record: ignored by bench view
    bench = {
        "uniform_torus": {
            "cps_median": 41_000.0,
            "host": {"shares": {"router": 0.6, "link": 0.3}},
        }
    }
    store.append(make_record(kind="bench", bench=bench))
    state = WatchService(runs_dir).bench_state()
    assert state["bench_records"] == 1
    [point] = state["cases"]["uniform_torus"]
    assert point["cps_median"] == 41_000.0
    assert point["host_shares"]["router"] == 0.6


def test_change_stamp_moves_with_the_files(tmp_path):
    runs_dir = seed_runs_dir(tmp_path)
    service = WatchService(runs_dir)
    first = service.change_stamp()
    assert first == service.change_stamp()  # stable when nothing changed
    store = RunStore(runs_dir)
    store.append(make_record(label="another"))
    assert service.change_stamp() != first


# -- page rendering -----------------------------------------------------------
def test_fleet_page_renders_sections_and_sse_hook(tmp_path):
    runs_dir = seed_runs_dir(tmp_path, finish=False)
    page = WatchService(runs_dir).fleet_page()
    assert page.startswith("<!DOCTYPE html>")
    assert "Runs in flight" in page
    assert "watchrun00001" in page
    assert "<svg" in page  # the progress bar
    assert "EventSource" in page and "/events" in page


def test_fleet_fragment_includes_sentinel_panel(tmp_path):
    runs_dir = seed_runs_dir(tmp_path)
    fragment = WatchService(runs_dir).fleet_fragment()
    assert "Regression sentinel" in fragment
    # Only a simulate record so far: the shared placeholder, no charts.
    assert "no bench history yet" in fragment

    store = RunStore(runs_dir)
    for index, cps in enumerate((4_000.0, 4_400.0)):
        store.append(make_record(
            kind="bench",
            created=f"2026-01-01T00:0{index}:00+00:00",
            bench={"fig11_hetero_phy": {"cps_median": cps}},
        ))
    fragment = WatchService(runs_dir).fleet_fragment()
    assert "throughput trajectory" in fragment
    assert "repro regress" in fragment


def test_fleet_page_warns_about_skipped_registry_lines(tmp_path):
    runs_dir = seed_runs_dir(tmp_path)
    (runs_dir / "runs.jsonl").open("a").write("{corrupt\n")
    fragment = WatchService(runs_dir).fleet_fragment()
    assert "unreadable registry line" in fragment


def test_run_page_renders_epochs_and_failure_banner(tmp_path):
    runs_dir = seed_runs_dir(tmp_path, fail=True)
    service = WatchService(runs_dir)
    page = service.run_page("watchrun00001")
    assert "failed at cycle" in page
    assert "deadlock" in page
    assert "B.json" in page
    assert service.run_page("no-such-run") is None
    assert service.run_fragment("no-such-run") is None


# -- the HTTP service ---------------------------------------------------------
@pytest.fixture
def watch_server(tmp_path):
    runs_dir = seed_runs_dir(tmp_path)
    service = WatchService(runs_dir, poll_seconds=0.05)
    server = make_server(service, port=0)  # free port
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=10) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def test_http_json_endpoints(watch_server):
    status, content_type, body = fetch(watch_server, "/api/runs")
    assert status == 200
    assert content_type == "application/json; charset=utf-8"
    document = json.loads(body)
    assert document["records"] == 1

    status, _, body = fetch(watch_server, "/api/live/watchrun00001")
    assert status == 200
    assert json.loads(body)["status"]["state"] == "finished"

    status, _, body = fetch(watch_server, "/api/bench")
    assert status == 200
    assert json.loads(body)["bench_records"] == 0


def test_http_pages(watch_server):
    status, content_type, body = fetch(watch_server, "/")
    assert status == 200
    assert content_type == "text/html; charset=utf-8"
    assert b"repro watch" in body

    status, _, body = fetch(watch_server, "/run/watchrun00001")
    assert status == 200
    assert b"finished at cycle" in body


def test_http_unknown_paths_return_404(watch_server):
    for path in ("/api/live/nope", "/run/nope", "/nope"):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(watch_server, path)
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"] == "not found"


def test_sse_stream_pushes_rendered_fragment(watch_server):
    host, port = watch_server.removeprefix("http://").split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=10)
    try:
        connection.request("GET", "/events")
        response = connection.getresponse()
        assert response.status == 200
        assert response.headers.get("Content-Type") == "text/event-stream"
        line = response.fp.readline().decode("utf-8")
        assert line.startswith("data: ")
        payload = json.loads(line[len("data: "):])
        assert "Runs in flight" in payload["html"]
    finally:
        connection.close()
