"""Tests for the Eq (3)/(4) weighted path-length model."""

import pytest

from repro.core.weighted_path import (
    ROUTER_PIPELINE_CYCLES,
    HopCostModel,
    make_cost_model,
)
from repro.noc.channel import ChannelKind
from repro.noc.flit import FLIT_BITS
from repro.sim.config import SimConfig

CONFIG = SimConfig()


def test_delays_follow_config():
    model = HopCostModel(CONFIG)
    assert model.delay(ChannelKind.ONCHIP) == ROUTER_PIPELINE_CYCLES + 1
    assert model.delay(ChannelKind.PARALLEL) == ROUTER_PIPELINE_CYCLES + 5
    assert model.delay(ChannelKind.SERIAL) == ROUTER_PIPELINE_CYCLES + 20
    # hetero is costed by its parallel component's delay
    assert model.delay(ChannelKind.HETERO_PHY) == model.delay(ChannelKind.PARALLEL)


def test_bandwidths():
    model = HopCostModel(CONFIG)
    assert model.bandwidth(ChannelKind.ONCHIP) == 2
    assert model.bandwidth(ChannelKind.SERIAL) == 4
    assert model.bandwidth(ChannelKind.HETERO_PHY) == 6


def test_energy_per_flit():
    model = HopCostModel(CONFIG)
    assert model.energy_pj(ChannelKind.SERIAL) == pytest.approx(FLIT_BITS * 2.4)
    assert model.energy_pj(ChannelKind.PARALLEL) == pytest.approx(FLIT_BITS * 1.0)


def test_eq3_components():
    model = HopCostModel(CONFIG, alpha=2.0, beta=8.0, gamma=0.5)
    expected = (
        2.0 * model.delay(ChannelKind.SERIAL)
        + 8.0 / model.bandwidth(ChannelKind.SERIAL)
        + 0.5 * model.energy_pj(ChannelKind.SERIAL)
    )
    assert model.hop_cost(ChannelKind.SERIAL) == pytest.approx(expected)


def test_eq4_path_length_sums_hops():
    model = HopCostModel.performance_first(CONFIG)
    kinds = [ChannelKind.ONCHIP, ChannelKind.ONCHIP, ChannelKind.SERIAL]
    assert model.path_length(kinds) == pytest.approx(
        2 * model.hop_cost(ChannelKind.ONCHIP) + model.hop_cost(ChannelKind.SERIAL)
    )


def test_performance_first_ignores_energy():
    model = HopCostModel.performance_first(CONFIG)
    assert model.gamma == 0.0
    # the serial hop is costlier purely on latency grounds
    assert model.hop_cost(ChannelKind.SERIAL) > model.hop_cost(ChannelKind.PARALLEL)


def test_energy_efficient_penalizes_serial_heavily():
    perf = HopCostModel.performance_first(CONFIG)
    energy = HopCostModel.energy_efficient(CONFIG)
    ratio_perf = perf.hop_cost(ChannelKind.SERIAL) / perf.hop_cost(ChannelKind.PARALLEL)
    ratio_energy = energy.hop_cost(ChannelKind.SERIAL) / energy.hop_cost(
        ChannelKind.PARALLEL
    )
    assert ratio_energy > ratio_perf


def test_make_cost_model_names():
    for name in ("performance", "balanced", "energy_efficient"):
        model = make_cost_model(CONFIG, name)
        assert isinstance(model, HopCostModel)
    with pytest.raises(ValueError):
        make_cost_model(CONFIG, "warp")
